//! Streaming, order-independent ingestion of the text log formats.
//!
//! The reader makes a single pass over each input file with a reused
//! line buffer and zero-copy field splitting ([`Fields`]), appending
//! typed records to per-table vectors together with their
//! file/line provenance ([`Src`]). Cross-references — a `CHARE`'s kind
//! (copied from its `ARRAY`), a task's `sends` list (built from its
//! `SEND` events) — are resolved *after* the scan, so record order in
//! the file does not matter: a `SEND` may precede its `TASK`, a `CHARE`
//! its `ARRAY`, and a `MSG` may appear anywhere.
//!
//! Two finishing modes share the scan:
//!
//! * **strict** — any malformed record, duplicate id, id-range hole, or
//!   dangling mandatory reference is a [`ParseError`] carrying the
//!   offending file and line;
//! * **salvage** — problems are skipped instead of fatal, each recorded
//!   as an [`IngestDiagnostic`] (codes `I001`–`I006`); dropped records
//!   cascade (a task whose chare was dropped is dropped too), optional
//!   links to dropped records are cleared, and the surviving tables are
//!   renumbered dense so the result is referentially intact by
//!   construction.

use crate::ids::{ArrayId, ChareId, EntryId, EventId, Kind, MsgId, PeId, SigId, TaskId};
use crate::record::{
    ArrayInfo, ChareInfo, CommPattern, EntryInfo, EventKind, EventRec, IdleRec, MsgRec, SigInfo,
    TaskRec,
};
use crate::time::Time;
use crate::trace::Trace;
use crate::validate::MAX_PES;
use std::collections::HashMap;
use std::io::BufRead;

/// A parse failure, with the file (for split traces) and 1-based line
/// number where it occurred.
#[derive(Debug)]
pub struct ParseError {
    /// File the error occurred in, when reading a split trace.
    /// `None` for single-document input.
    pub file: Option<String>,
    /// 1-based line number (0 when the error is about a whole file).
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl ParseError {
    fn whole(msg: impl Into<String>) -> ParseError {
        ParseError { file: None, line: 0, msg: msg.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.file, self.line) {
            (Some(name), 0) => write!(f, "{name}: {}", self.msg),
            (Some(name), n) => write!(f, "{name}:{n}: {}", self.msg),
            (None, n) => write!(f, "line {n}: {}", self.msg),
        }
    }
}

impl std::error::Error for ParseError {}

/// The ingestion-diagnostic family (`I` codes) produced by salvage
/// mode. Stable codes, documented in `docs/lints.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestCode {
    /// `I001` — a record line could not be parsed and was skipped.
    MalformedRecord,
    /// `I002` — a second record with an already-seen id was skipped.
    DuplicateId,
    /// `I003` — a record referencing a missing or dropped record (or an
    /// out-of-range PE) was dropped.
    DanglingReference,
    /// `I004` — an *optional* link (task sink, receive's message, a
    /// message's receive side) pointed at a dropped record and was
    /// cleared instead of dropping the referencing record.
    DowngradedLink,
    /// `I005` — a file header was missing or malformed, or a per-PE log
    /// could not be opened; the file was parsed headerless or skipped.
    BadFileHeader,
    /// `I006` — a table lost records or had sparse ids; surviving
    /// records were renumbered to a dense id range (summary, one per
    /// table), or the PE count was adjusted to cover the records.
    TableCompacted,
}

impl IngestCode {
    /// The stable diagnostic code, e.g. `"I003"`.
    pub fn code(self) -> &'static str {
        match self {
            IngestCode::MalformedRecord => "I001",
            IngestCode::DuplicateId => "I002",
            IngestCode::DanglingReference => "I003",
            IngestCode::DowngradedLink => "I004",
            IngestCode::BadFileHeader => "I005",
            IngestCode::TableCompacted => "I006",
        }
    }

    /// Short kebab-case name, e.g. `"dangling-reference"`.
    pub fn name(self) -> &'static str {
        match self {
            IngestCode::MalformedRecord => "malformed-record",
            IngestCode::DuplicateId => "duplicate-id",
            IngestCode::DanglingReference => "dangling-reference",
            IngestCode::DowngradedLink => "downgraded-link",
            IngestCode::BadFileHeader => "bad-file-header",
            IngestCode::TableCompacted => "table-compacted",
        }
    }

    /// One-sentence explanation of what the code means.
    pub fn explanation(self) -> &'static str {
        match self {
            IngestCode::MalformedRecord => "the line is not a well-formed record and was skipped",
            IngestCode::DuplicateId => {
                "a record with this id was already read; the later one was skipped"
            }
            IngestCode::DanglingReference => {
                "the record references a record that is missing or was itself dropped"
            }
            IngestCode::DowngradedLink => {
                "an optional cross-reference pointed at a dropped record and was cleared"
            }
            IngestCode::BadFileHeader => {
                "a file header was missing or wrong, or a per-PE log was unreadable"
            }
            IngestCode::TableCompacted => "surviving records were renumbered to a dense id range",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// One salvage finding: what was skipped or rewritten, and where.
#[derive(Debug, Clone)]
pub struct IngestDiagnostic {
    /// Which `I` code.
    pub code: IngestCode,
    /// File the problem was found in (split traces only).
    pub file: Option<String>,
    /// 1-based line number (0 for whole-file or whole-table findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for IngestDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.code.code(), self.code.name())?;
        match (&self.file, self.line) {
            (Some(name), 0) => write!(f, " {name}")?,
            (Some(name), n) => write!(f, " {name}:{n}")?,
            (None, 0) => {}
            (None, n) => write!(f, " line {n}")?,
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything salvage mode did to produce a loadable trace.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Individual findings, capped per code (see [`IngestReport::suppressed`]).
    pub diagnostics: Vec<IngestDiagnostic>,
    /// Findings beyond the per-code cap, counted but not stored.
    pub suppressed: usize,
    /// Total records skipped or dropped.
    pub skipped_records: usize,
    /// Optional links cleared because their target was dropped.
    pub downgraded_links: usize,
    /// Raw bytes consumed from the input reader(s).
    pub bytes: u64,
    /// Lines scanned (including comments, blanks, and the header).
    pub lines: u64,
    /// Records parsed successfully into the staging tables (before any
    /// salvage cascade drops).
    pub records: u64,
}

impl IngestReport {
    /// True when the input was ingested without any intervention.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.suppressed == 0
    }

    /// One-line summary for status output.
    pub fn summary(&self) -> String {
        format!(
            "{} finding(s), {} record(s) skipped, {} link(s) downgraded",
            self.diagnostics.len() + self.suppressed,
            self.skipped_records,
            self.downgraded_links
        )
    }

    /// Flushes the ingest tallies onto an observability recorder (the
    /// `ingest.*` counter family; see `docs/observability.md`).
    pub fn flush_counters(&self, rec: &lsr_obs::Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.add("ingest.bytes", self.bytes);
        rec.add("ingest.lines", self.lines);
        rec.add("ingest.records", self.records);
        rec.add("ingest.salvage.skipped", self.skipped_records as u64);
        rec.add("ingest.salvage.downgraded", self.downgraded_links as u64);
        rec.add("ingest.salvage.findings", (self.diagnostics.len() + self.suppressed) as u64);
    }
}

/// Cap on stored diagnostics per code; the rest are only counted.
const DIAG_CAP: usize = 64;

/// Where a record came from: file index into `Loader::files` (or
/// [`NO_FILE`] for single-document input) and 1-based line.
#[derive(Debug, Clone, Copy)]
struct Src {
    file: u32,
    line: u32,
}

const NO_FILE: u32 = u32::MAX;

fn file_of(files: &[String], src: Src) -> Option<String> {
    if src.file == NO_FILE {
        None
    } else {
        Some(files[src.file as usize].clone())
    }
}

fn src_err(files: &[String], src: Src, msg: String) -> ParseError {
    ParseError { file: file_of(files, src), line: src.line as usize, msg }
}

/// Diagnostic accumulator with the per-code cap.
#[derive(Default)]
struct DiagSink {
    diags: Vec<IngestDiagnostic>,
    counts: [usize; 6],
    suppressed: usize,
    skipped: usize,
    downgraded: usize,
}

impl DiagSink {
    fn push(&mut self, code: IngestCode, file: Option<String>, line: usize, message: String) {
        if self.counts[code.idx()] < DIAG_CAP {
            self.counts[code.idx()] += 1;
            self.diags.push(IngestDiagnostic { code, file, line, message });
        } else {
            self.suppressed += 1;
        }
    }

    fn into_report(self) -> IngestReport {
        IngestReport {
            diagnostics: self.diags,
            suppressed: self.suppressed,
            skipped_records: self.skipped,
            downgraded_links: self.downgraded,
            // Volume tallies live on the Loader; finish() fills them in.
            ..IngestReport::default()
        }
    }
}

/// Zero-copy whitespace-separated field cursor over one line of raw
/// bytes.
///
/// The scanner works on bytes end to end so no per-line UTF-8
/// validation pass is needed; only trailing *names* ([`Fields::rest`],
/// which preserves interior whitespace runs) are checked when they are
/// turned into `String`s. Numeric fields and record tags are pure
/// ASCII comparisons either way.
struct Fields<'a> {
    raw: &'a [u8],
    pos: usize,
}

impl<'a> Fields<'a> {
    fn new(raw: &'a [u8]) -> Fields<'a> {
        Fields { raw, pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.raw.len() && self.raw[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Option<&'a [u8]> {
        self.skip_ws();
        if self.pos >= self.raw.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.raw.len() && !self.raw[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        Some(&self.raw[start..self.pos])
    }

    /// The remaining tail of the line, trimmed of *surrounding* ASCII
    /// whitespace only: interior runs survive.
    fn rest(&mut self) -> &'a [u8] {
        self.skip_ws();
        let start = self.pos;
        self.pos = self.raw.len();
        let mut end = self.raw.len();
        while end > start && self.raw[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        &self.raw[start..end]
    }
}

/// Renders raw bytes for an error message; for the valid-UTF-8 inputs
/// the strict reader used to require, this prints exactly what the old
/// `&str`-based errors did.
fn lossy(b: &[u8]) -> std::borrow::Cow<'_, str> {
    String::from_utf8_lossy(b)
}

/// Converts a trailing name to an owned `String`, the only place the
/// reader requires valid UTF-8.
fn utf8_name(b: &[u8]) -> Result<String, String> {
    std::str::from_utf8(b).map(str::to_owned).map_err(|_| "name is not valid UTF-8".to_owned())
}

#[inline]
fn parse_u64(b: &[u8]) -> Option<u64> {
    if b.is_empty() {
        return None;
    }
    // 19 digits can never overflow a u64, so the common path needs no
    // per-digit overflow checks; longer strings (e.g. leading zeros)
    // take the checked loop.
    if b.len() <= 19 {
        let mut v: u64 = 0;
        for &c in b {
            let d = c.wrapping_sub(b'0');
            if d > 9 {
                return None;
            }
            v = v * 10 + u64::from(d);
        }
        return Some(v);
    }
    let mut v: u64 = 0;
    for &c in b {
        let d = c.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(d))?;
    }
    Some(v)
}

fn u64_field(f: Option<&[u8]>) -> Result<u64, String> {
    let s = f.ok_or_else(|| "missing field".to_owned())?;
    parse_u64(s).ok_or_else(|| format!("bad integer {:?}", lossy(s)))
}

fn u32_field(f: Option<&[u8]>) -> Result<u32, String> {
    let s = f.ok_or_else(|| "missing field".to_owned())?;
    parse_u64(s)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| format!("bad integer {:?}", lossy(s)))
}

fn opt_u32_field(f: Option<&[u8]>) -> Result<Option<u32>, String> {
    match f {
        None => Err("missing field".to_owned()),
        Some(b"-") => Ok(None),
        Some(s) => parse_u64(s)
            .and_then(|v| u32::try_from(v).ok())
            .map(Some)
            .ok_or_else(|| format!("bad integer {:?}", lossy(s))),
    }
}

fn opt_u64_field(f: Option<&[u8]>) -> Result<Option<u64>, String> {
    match f {
        None => Err("missing field".to_owned()),
        Some(b"-") => Ok(None),
        Some(s) => parse_u64(s).map(Some).ok_or_else(|| format!("bad integer {:?}", lossy(s))),
    }
}

/// Parses a `SIG` pattern token: `near:R`, `tree:A`, `any`, or `?`.
fn pattern_field(f: Option<&[u8]>) -> Result<CommPattern, String> {
    let s = f.ok_or_else(|| "missing field".to_owned())?;
    match s {
        b"any" => return Ok(CommPattern::Any),
        b"?" => return Ok(CommPattern::Unknown),
        _ => {}
    }
    let bad = || format!("bad pattern {:?}", lossy(s));
    let colon = s.iter().position(|&b| b == b':').ok_or_else(bad)?;
    let n = parse_u64(&s[colon + 1..]).and_then(|v| u32::try_from(v).ok()).ok_or_else(bad)?;
    match &s[..colon] {
        b"near" => Ok(CommPattern::Neighbor { radius: n }),
        b"tree" => Ok(CommPattern::Tree { arity: n }),
        _ => Err(bad()),
    }
}

/// Which records a file kind may contain.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Section {
    /// Single-document trace: every record.
    Whole,
    /// `.sts` metadata: `PES`, `ARRAY`, `CHARE`, `ENTRY`.
    Metadata,
    /// Per-PE log: `TASK`, `RECV`, `SEND`, `MSG`, `IDLE`.
    Events,
}

/// A `CHARE` record before its kind is resolved from its array.
struct RawChare {
    id: ChareId,
    array: ArrayId,
    index: u32,
    home_pe: PeId,
}

/// The streaming loader: scan files in, finish once.
pub(crate) struct Loader {
    salvage: bool,
    files: Vec<String>,
    pe_count: u32,
    pub(crate) saw_pes: bool,
    arrays: Vec<(ArrayInfo, Src)>,
    chares: Vec<(RawChare, Src)>,
    entries: Vec<(EntryInfo, Src)>,
    sigs: Vec<(SigInfo, Src)>,
    tasks: Vec<(TaskRec, Src)>,
    events: Vec<(EventRec, Src)>,
    msgs: Vec<(MsgRec, Src)>,
    idles: Vec<IdleRec>,
    sink: DiagSink,
    /// Ingest-volume tallies (bytes/lines consumed, records parsed),
    /// surfaced on [`IngestReport`] for the obs counters.
    bytes: u64,
    lines: u64,
    records: u64,
}

impl Loader {
    pub(crate) fn new(salvage: bool) -> Loader {
        Loader {
            salvage,
            files: Vec::new(),
            pe_count: 0,
            saw_pes: false,
            arrays: Vec::new(),
            chares: Vec::new(),
            entries: Vec::new(),
            sigs: Vec::new(),
            tasks: Vec::new(),
            events: Vec::new(),
            msgs: Vec::new(),
            idles: Vec::new(),
            sink: DiagSink::default(),
            bytes: 0,
            lines: 0,
            records: 0,
        }
    }

    pub(crate) fn pe_count(&self) -> u32 {
        self.pe_count
    }

    /// Records a whole-file salvage finding (no scanned line to point at).
    pub(crate) fn file_diag(&mut self, file: Option<String>, msg: String) {
        self.sink.push(IngestCode::BadFileHeader, file, 0, msg);
    }

    fn diag(&mut self, code: IngestCode, src: Src, msg: String) {
        let file = file_of(&self.files, src);
        self.sink.push(code, file, src.line as usize, msg);
    }

    fn skip(&mut self, src: Src, msg: String) {
        self.diag(IngestCode::MalformedRecord, src, msg);
        self.sink.skipped += 1;
    }

    /// Streams one file through the record scanner. Returns whether a
    /// header line was seen. `header_err` renders the strict-mode error
    /// for a bad header line (given the offending line).
    pub(crate) fn scan<R: BufRead>(
        &mut self,
        mut r: R,
        file: Option<&str>,
        header: &str,
        header_err: &dyn Fn(&str) -> String,
        section: Section,
    ) -> Result<bool, ParseError> {
        let fidx = match file {
            Some(name) => {
                self.files.push(name.to_owned());
                (self.files.len() - 1) as u32
            }
            None => NO_FILE,
        };
        // Lines are borrowed straight out of the reader's buffer;
        // `spill` only fills in when a line spans a buffer refill, so
        // the common case performs no per-line copy.
        let mut spill: Vec<u8> = Vec::new();
        let mut lineno: u32 = 0;
        let mut saw_header = false;
        loop {
            let consumed = {
                let avail = match r.fill_buf() {
                    Ok(a) => a,
                    Err(e) => {
                        let src = Src { file: fidx, line: lineno + 1 };
                        return Err(src_err(&self.files, src, e.to_string()));
                    }
                };
                if avail.is_empty() {
                    if !spill.is_empty() {
                        lineno += 1;
                        let src = Src { file: fidx, line: lineno };
                        self.scan_line(&spill, src, &mut saw_header, header, header_err, section)?;
                    }
                    break;
                }
                match avail.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        lineno += 1;
                        let src = Src { file: fidx, line: lineno };
                        if spill.is_empty() {
                            self.scan_line(
                                &avail[..pos],
                                src,
                                &mut saw_header,
                                header,
                                header_err,
                                section,
                            )?;
                        } else {
                            spill.extend_from_slice(&avail[..pos]);
                            let line = std::mem::take(&mut spill);
                            self.scan_line(
                                &line,
                                src,
                                &mut saw_header,
                                header,
                                header_err,
                                section,
                            )?;
                            spill = line; // reuse the allocation
                            spill.clear();
                        }
                        pos + 1
                    }
                    None => {
                        spill.extend_from_slice(avail);
                        avail.len()
                    }
                }
            };
            self.bytes += consumed as u64;
            r.consume(consumed);
        }
        self.lines += lineno as u64;
        Ok(saw_header)
    }

    /// Handles one raw (untrimmed) line: comments, the header, then the
    /// record itself, with salvage-mode downgrades.
    fn scan_line(
        &mut self,
        raw: &[u8],
        src: Src,
        saw_header: &mut bool,
        header: &str,
        header_err: &dyn Fn(&str) -> String,
        section: Section,
    ) -> Result<(), ParseError> {
        let raw = raw.trim_ascii();
        if raw.is_empty() || raw[0] == b'#' {
            return Ok(());
        }
        if !*saw_header {
            if raw == header.as_bytes() {
                *saw_header = true;
                return Ok(());
            }
            if !self.salvage {
                return Err(src_err(&self.files, src, header_err(&lossy(raw))));
            }
            let msg = header_err(&lossy(raw));
            self.diag(IngestCode::BadFileHeader, src, msg);
            *saw_header = true; // fall through: try the line as a record
        }
        match self.record(raw, src, section) {
            Ok(()) => self.records += 1,
            Err(msg) => {
                if !self.salvage {
                    return Err(src_err(&self.files, src, msg));
                }
                self.skip(src, msg);
            }
        }
        Ok(())
    }

    /// Parses one record line into the staging tables.
    fn record(&mut self, raw: &[u8], src: Src, section: Section) -> Result<(), String> {
        let mut f = Fields::new(raw);
        let tag = f.next().expect("non-empty line has a field");
        let meta_ok = section != Section::Events;
        let ev_ok = section != Section::Metadata;
        match tag {
            b"PES" if meta_ok => {
                self.pe_count = u32_field(f.next())?;
                self.saw_pes = true;
            }
            b"ARRAY" if meta_ok => {
                let id = ArrayId(u32_field(f.next())?);
                let kind = match f.next() {
                    Some(b"A") => Kind::Application,
                    Some(b"R") => Kind::Runtime,
                    other => return Err(format!("bad kind {:?}", other.map(lossy))),
                };
                let name = utf8_name(f.rest())?;
                self.arrays.push((ArrayInfo { id, name, kind }, src));
            }
            b"CHARE" if meta_ok => {
                let id = ChareId(u32_field(f.next())?);
                let array = ArrayId(u32_field(f.next())?);
                let index = u32_field(f.next())?;
                let home_pe = PeId(u32_field(f.next())?);
                self.chares.push((RawChare { id, array, index, home_pe }, src));
            }
            b"ENTRY" if meta_ok => {
                let id = EntryId(u32_field(f.next())?);
                let sdag_serial = opt_u32_field(f.next())?;
                let collective = match f.next() {
                    Some(b"C") => true,
                    Some(b"-") => false,
                    other => return Err(format!("bad collective flag {:?}", other.map(lossy))),
                };
                let name = utf8_name(f.rest())?;
                self.entries.push((EntryInfo { id, name, sdag_serial, collective }, src));
            }
            b"SIG" if meta_ok => {
                let id = SigId(u32_field(f.next())?);
                let src_array = ArrayId(u32_field(f.next())?);
                let src_entry = EntryId(u32_field(f.next())?);
                let dst_array = ArrayId(u32_field(f.next())?);
                let dst_entry = EntryId(u32_field(f.next())?);
                let pattern = pattern_field(f.next())?;
                let msgs = u64_field(f.next())?;
                self.sigs.push((
                    SigInfo { id, src_array, src_entry, dst_array, dst_entry, pattern, msgs },
                    src,
                ));
            }
            b"TASK" if ev_ok => {
                let id = TaskId(u32_field(f.next())?);
                let chare = ChareId(u32_field(f.next())?);
                let entry = EntryId(u32_field(f.next())?);
                let pe = PeId(u32_field(f.next())?);
                let begin = Time(u64_field(f.next())?);
                let end = Time(u64_field(f.next())?);
                let sink = opt_u32_field(f.next())?.map(EventId);
                self.tasks.push((
                    TaskRec { id, chare, entry, pe, begin, end, sink, sends: Vec::new() },
                    src,
                ));
            }
            b"RECV" if ev_ok => {
                let id = EventId(u32_field(f.next())?);
                let task = TaskId(u32_field(f.next())?);
                let time = Time(u64_field(f.next())?);
                let msg = opt_u32_field(f.next())?.map(MsgId);
                self.events.push((EventRec { id, task, time, kind: EventKind::Recv { msg } }, src));
            }
            b"SEND" if ev_ok => {
                let id = EventId(u32_field(f.next())?);
                let task = TaskId(u32_field(f.next())?);
                let time = Time(u64_field(f.next())?);
                let msg = MsgId(u32_field(f.next())?);
                self.events.push((EventRec { id, task, time, kind: EventKind::Send { msg } }, src));
            }
            b"MSG" if ev_ok => {
                let id = MsgId(u32_field(f.next())?);
                let send_event = EventId(u32_field(f.next())?);
                let dst_chare = ChareId(u32_field(f.next())?);
                let dst_entry = EntryId(u32_field(f.next())?);
                let send_time = Time(u64_field(f.next())?);
                let recv_task = opt_u32_field(f.next())?.map(TaskId);
                let recv_time = opt_u64_field(f.next())?.map(Time);
                self.msgs.push((
                    MsgRec {
                        id,
                        send_event,
                        recv_task,
                        dst_chare,
                        dst_entry,
                        send_time,
                        recv_time,
                    },
                    src,
                ));
            }
            b"IDLE" if ev_ok => {
                let pe = PeId(u32_field(f.next())?);
                let begin = Time(u64_field(f.next())?);
                let end = Time(u64_field(f.next())?);
                self.idles.push(IdleRec { pe, begin, end });
            }
            b"PES" | b"ARRAY" | b"CHARE" | b"ENTRY" | b"SIG" | b"TASK" | b"RECV" | b"SEND"
            | b"MSG" | b"IDLE" => {
                return Err(format!("unexpected record {:?} for this file kind", lossy(tag)));
            }
            other => return Err(format!("unknown record tag {:?}", lossy(other))),
        }
        Ok(())
    }
}

impl Loader {
    /// Finishes the load in the mode the loader was created with.
    pub(crate) fn finish(self) -> Result<(Trace, IngestReport), ParseError> {
        let (bytes, lines, records) = (self.bytes, self.lines, self.records);
        let (trace, mut report) = if self.salvage {
            self.finish_salvage()
        } else {
            (self.finish_strict()?, IngestReport::default())
        };
        report.bytes = bytes;
        report.lines = lines;
        report.records = records;
        Ok((trace, report))
    }

    /// Strict finish: every table must be a dense `0..n` id range and
    /// every mandatory cross-reference must resolve.
    fn finish_strict(self) -> Result<Trace, ParseError> {
        let Loader {
            files,
            pe_count,
            mut arrays,
            mut chares,
            mut entries,
            mut sigs,
            mut tasks,
            mut events,
            mut msgs,
            mut idles,
            ..
        } = self;
        require_dense("ARRAY", &mut arrays, |a| a.id.0, &files)?;
        require_dense("CHARE", &mut chares, |c| c.id.0, &files)?;
        require_dense("ENTRY", &mut entries, |e| e.id.0, &files)?;
        require_dense("SIG", &mut sigs, |s| s.id.0, &files)?;
        require_dense("TASK", &mut tasks, |t| t.id.0, &files)?;
        require_dense("event", &mut events, |e| e.id.0, &files)?;
        require_dense("MSG", &mut msgs, |m| m.id.0, &files)?;

        let mut trace = Trace { pe_count, ..Trace::default() };
        trace.arrays = arrays.into_iter().map(|(a, _)| a).collect();
        trace.entries = entries.into_iter().map(|(e, _)| e).collect();
        // Reference validity is checked by the validation pass the
        // strict readers run afterwards, same as for the other tables.
        trace.sigs = sigs.into_iter().map(|(s, _)| s).collect();
        for (c, src) in chares {
            let kind = trace
                .arrays
                .get(c.array.index())
                .ok_or_else(|| src_err(&files, src, "CHARE references unknown ARRAY".to_owned()))?
                .kind;
            trace.chares.push(ChareInfo {
                id: c.id,
                array: c.array,
                index: c.index,
                kind,
                home_pe: c.home_pe,
            });
        }
        trace.tasks = tasks.into_iter().map(|(t, _)| t).collect();
        // `sends` lists rebuild in event-id order, which is the order a
        // canonical single-document log lists them in.
        for (ev, src) in events {
            if ev.kind.is_source() {
                trace
                    .tasks
                    .get_mut(ev.task.index())
                    .ok_or_else(|| src_err(&files, src, "SEND references unknown TASK".to_owned()))?
                    .sends
                    .push(ev.id);
            }
            trace.events.push(ev);
        }
        trace.msgs = msgs.into_iter().map(|(m, _)| m).collect();
        idles.sort_by_key(|i| (i.pe.0, i.begin.0));
        trace.idles = idles;
        Ok(trace)
    }

    /// Salvage finish: skip, cascade, downgrade, and renumber so the
    /// resulting trace is referentially intact by construction.
    fn finish_salvage(self) -> (Trace, IngestReport) {
        let Loader {
            files,
            mut pe_count,
            mut arrays,
            mut chares,
            mut entries,
            mut sigs,
            mut tasks,
            mut events,
            mut msgs,
            mut idles,
            sink: mut diags,
            ..
        } = self;

        // Keep the first record of every id (I002).
        dedup("ARRAY", &mut arrays, |a| a.id.0, &mut diags, &files);
        dedup("CHARE", &mut chares, |c| c.id.0, &mut diags, &files);
        dedup("ENTRY", &mut entries, |e| e.id.0, &mut diags, &files);
        dedup("SIG", &mut sigs, |s| s.id.0, &mut diags, &files);
        dedup("TASK", &mut tasks, |t| t.id.0, &mut diags, &files);
        dedup("event", &mut events, |e| e.id.0, &mut diags, &files);
        dedup("MSG", &mut msgs, |m| m.id.0, &mut diags, &files);

        // A hostile PES value must not drive allocations downstream.
        if pe_count > MAX_PES {
            diags.push(
                IngestCode::TableCompacted,
                None,
                0,
                format!("PES {pe_count} exceeds the supported maximum {MAX_PES}; clamped"),
            );
            pe_count = MAX_PES;
        }

        // id → slot lookups (ids may be sparse at this point).
        let amap = slot_map(&arrays, |a| a.id.0);
        let cmap = slot_map(&chares, |c| c.id.0);
        let emap = slot_map(&entries, |e| e.id.0);
        let tmap = slot_map(&tasks, |t| t.id.0);
        let evmap = slot_map(&events, |e| e.id.0);
        let mmap = slot_map(&msgs, |m| m.id.0);

        // Drop records on impossible PEs (I003)...
        let mut drop_c = vec![false; chares.len()];
        let mut drop_t = vec![false; tasks.len()];
        let mut drop_e = vec![false; events.len()];
        let mut drop_m = vec![false; msgs.len()];
        for i in 0..chares.len() {
            let (c, src) = (&chares[i].0, chares[i].1);
            if c.home_pe.0 >= MAX_PES {
                drop_c[i] = true;
                diags.push(
                    IngestCode::DanglingReference,
                    file_of(&files, src),
                    src.line as usize,
                    format!(
                        "CHARE {}: home pe {} is beyond the supported maximum",
                        c.id.0, c.home_pe.0
                    ),
                );
                diags.skipped += 1;
            }
        }
        for i in 0..tasks.len() {
            let (t, src) = (&tasks[i].0, tasks[i].1);
            if t.pe.0 >= MAX_PES {
                drop_t[i] = true;
                diags.push(
                    IngestCode::DanglingReference,
                    file_of(&files, src),
                    src.line as usize,
                    format!("TASK {}: pe {} is beyond the supported maximum", t.id.0, t.pe.0),
                );
                diags.skipped += 1;
            }
        }

        // ...then cascade drops through mandatory references until a
        // fixpoint: events and messages reference each other, so one
        // pass is not enough.
        loop {
            let mut changed = false;
            for i in 0..chares.len() {
                if drop_c[i] {
                    continue;
                }
                let (c, src) = (&chares[i].0, chares[i].1);
                if !amap.contains_key(&c.array.0) {
                    drop_c[i] = true;
                    changed = true;
                    diags.push(
                        IngestCode::DanglingReference,
                        file_of(&files, src),
                        src.line as usize,
                        format!("CHARE {} references unknown ARRAY {}", c.id.0, c.array.0),
                    );
                    diags.skipped += 1;
                }
            }
            for i in 0..tasks.len() {
                if drop_t[i] {
                    continue;
                }
                let (t, src) = (&tasks[i].0, tasks[i].1);
                if !(alive(&cmap, &drop_c, t.chare.0) && emap.contains_key(&t.entry.0)) {
                    drop_t[i] = true;
                    changed = true;
                    diags.push(
                        IngestCode::DanglingReference,
                        file_of(&files, src),
                        src.line as usize,
                        format!("TASK {} references a missing or dropped CHARE/ENTRY", t.id.0),
                    );
                    diags.skipped += 1;
                }
            }
            for i in 0..events.len() {
                if drop_e[i] {
                    continue;
                }
                let (e, src) = (&events[i].0, events[i].1);
                let ok = alive(&tmap, &drop_t, e.task.0)
                    && match e.kind {
                        EventKind::Send { msg } => alive(&mmap, &drop_m, msg.0),
                        EventKind::Recv { .. } => true,
                    };
                if !ok {
                    drop_e[i] = true;
                    changed = true;
                    diags.push(
                        IngestCode::DanglingReference,
                        file_of(&files, src),
                        src.line as usize,
                        format!("event {} references a missing or dropped TASK/MSG", e.id.0),
                    );
                    diags.skipped += 1;
                }
            }
            for i in 0..msgs.len() {
                if drop_m[i] {
                    continue;
                }
                let (m, src) = (&msgs[i].0, msgs[i].1);
                let ok = alive(&evmap, &drop_e, m.send_event.0)
                    && alive(&cmap, &drop_c, m.dst_chare.0)
                    && emap.contains_key(&m.dst_entry.0);
                if !ok {
                    drop_m[i] = true;
                    changed = true;
                    diags.push(
                        IngestCode::DanglingReference,
                        file_of(&files, src),
                        src.line as usize,
                        format!("MSG {} references a missing or dropped record", m.id.0),
                    );
                    diags.skipped += 1;
                }
            }
            if !changed {
                break;
            }
        }

        // Optional links to dropped records are cleared, not fatal (I004).
        for i in 0..tasks.len() {
            if drop_t[i] {
                continue;
            }
            let src = tasks[i].1;
            let t = &mut tasks[i].0;
            if let Some(s) = t.sink {
                if !alive(&evmap, &drop_e, s.0) {
                    t.sink = None;
                    diags.push(
                        IngestCode::DowngradedLink,
                        file_of(&files, src),
                        src.line as usize,
                        format!(
                            "TASK {}: sink event {} is missing or dropped; cleared",
                            t.id.0, s.0
                        ),
                    );
                    diags.downgraded += 1;
                }
            }
        }
        for i in 0..events.len() {
            if drop_e[i] {
                continue;
            }
            let src = events[i].1;
            let e = &mut events[i].0;
            if let EventKind::Recv { msg: Some(m) } = e.kind {
                if !alive(&mmap, &drop_m, m.0) {
                    e.kind = EventKind::Recv { msg: None };
                    diags.push(
                        IngestCode::DowngradedLink,
                        file_of(&files, src),
                        src.line as usize,
                        format!("RECV {}: message {} is missing or dropped; cleared", e.id.0, m.0),
                    );
                    diags.downgraded += 1;
                }
            }
        }
        for i in 0..msgs.len() {
            if drop_m[i] {
                continue;
            }
            let src = msgs[i].1;
            let m = &mut msgs[i].0;
            if let Some(t) = m.recv_task {
                if !alive(&tmap, &drop_t, t.0) {
                    m.recv_task = None;
                    m.recv_time = None;
                    diags.push(
                        IngestCode::DowngradedLink,
                        file_of(&files, src),
                        src.line as usize,
                        format!(
                            "MSG {}: receive task {} is missing or dropped; cleared",
                            m.id.0, t.0
                        ),
                    );
                    diags.downgraded += 1;
                } else if tasks[tmap[&t.0] as usize].0.sink.is_none() {
                    // The receive task survived but lost its sink event
                    // above: a matched message must point at a task
                    // with a sink, so the match degrades with it.
                    m.recv_task = None;
                    m.recv_time = None;
                    diags.push(
                        IngestCode::DowngradedLink,
                        file_of(&files, src),
                        src.line as usize,
                        format!(
                            "MSG {}: receive task {} lost its sink event; match cleared",
                            m.id.0, t.0
                        ),
                    );
                    diags.downgraded += 1;
                }
            }
        }

        // The PE count must cover every surviving record.
        let mut max_pe: Option<u32> = None;
        for (i, (t, _)) in tasks.iter().enumerate() {
            if !drop_t[i] {
                max_pe = max_pe.max(Some(t.pe.0));
            }
        }
        for (i, (c, _)) in chares.iter().enumerate() {
            if !drop_c[i] {
                max_pe = max_pe.max(Some(c.home_pe.0));
            }
        }
        idles.retain(|idle| {
            if idle.pe.0 >= MAX_PES {
                diags.push(
                    IngestCode::DanglingReference,
                    None,
                    0,
                    format!("IDLE on pe {} beyond the supported maximum dropped", idle.pe.0),
                );
                diags.skipped += 1;
                false
            } else {
                max_pe = max_pe.max(Some(idle.pe.0));
                true
            }
        });
        if let Some(m) = max_pe {
            if m >= pe_count {
                diags.push(
                    IngestCode::TableCompacted,
                    None,
                    0,
                    format!("pe count raised from {pe_count} to {} to cover recorded PEs", m + 1),
                );
                pe_count = m + 1;
            }
        }

        // Compact each table and renumber ids dense (I006).
        let (raw_arrays, amap2) = compact("ARRAY", arrays, &[], |a| a.id.0, &mut diags);
        let (raw_chares, cmap2) = compact("CHARE", chares, &drop_c, |c| c.id.0, &mut diags);
        let (raw_entries, emap2) = compact("ENTRY", entries, &[], |e| e.id.0, &mut diags);
        let (raw_tasks, tmap2) = compact("TASK", tasks, &drop_t, |t| t.id.0, &mut diags);
        let (raw_events, evmap2) = compact("event", events, &drop_e, |e| e.id.0, &mut diags);
        let (raw_msgs, mmap2) = compact("MSG", msgs, &drop_m, |m| m.id.0, &mut diags);

        let arrays2: Vec<ArrayInfo> = raw_arrays
            .into_iter()
            .enumerate()
            .map(|(i, a)| ArrayInfo { id: ArrayId(i as u32), ..a })
            .collect();
        let entries2: Vec<EntryInfo> = raw_entries
            .into_iter()
            .enumerate()
            .map(|(i, e)| EntryInfo { id: EntryId(i as u32), ..e })
            .collect();
        let chares2: Vec<ChareInfo> = raw_chares
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let array = ArrayId(amap2[&c.array.0]);
                ChareInfo {
                    id: ChareId(i as u32),
                    array,
                    index: c.index,
                    kind: arrays2[array.index()].kind,
                    home_pe: c.home_pe,
                }
            })
            .collect();
        let mut tasks2: Vec<TaskRec> = raw_tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| TaskRec {
                id: TaskId(i as u32),
                chare: ChareId(cmap2[&t.chare.0]),
                entry: EntryId(emap2[&t.entry.0]),
                pe: t.pe,
                begin: t.begin,
                end: t.end,
                sink: t.sink.and_then(|e| evmap2.get(&e.0).map(|&n| EventId(n))),
                sends: Vec::new(),
            })
            .collect();
        let events2: Vec<EventRec> = raw_events
            .into_iter()
            .enumerate()
            .map(|(i, e)| EventRec {
                id: EventId(i as u32),
                task: TaskId(tmap2[&e.task.0]),
                time: e.time,
                kind: match e.kind {
                    EventKind::Recv { msg } => EventKind::Recv {
                        msg: msg.and_then(|m| mmap2.get(&m.0).map(|&n| MsgId(n))),
                    },
                    EventKind::Send { msg } => EventKind::Send { msg: MsgId(mmap2[&msg.0]) },
                },
            })
            .collect();
        let msgs2: Vec<MsgRec> = raw_msgs
            .into_iter()
            .enumerate()
            .map(|(i, m)| MsgRec {
                id: MsgId(i as u32),
                send_event: EventId(evmap2[&m.send_event.0]),
                recv_task: m.recv_task.and_then(|t| tmap2.get(&t.0).map(|&n| TaskId(n))),
                dst_chare: ChareId(cmap2[&m.dst_chare.0]),
                dst_entry: EntryId(emap2[&m.dst_entry.0]),
                send_time: m.send_time,
                recv_time: m.recv_time,
            })
            .collect();
        for e in &events2 {
            if e.kind.is_source() {
                tasks2[e.task.index()].sends.push(e.id);
            }
        }
        idles.sort_by_key(|i| (i.pe.0, i.begin.0));

        // Signatures reference only arrays and entries, which are never
        // dropped (only deduplicated and renumbered) — so a sig either
        // remaps cleanly or referenced an id that never existed.
        let mut sigs2: Vec<SigInfo> = Vec::with_capacity(sigs.len());
        for (s, src) in sigs {
            let remapped = (|| {
                Some(SigInfo {
                    id: SigId(sigs2.len() as u32),
                    src_array: ArrayId(*amap2.get(&s.src_array.0)?),
                    src_entry: EntryId(*emap2.get(&s.src_entry.0)?),
                    dst_array: ArrayId(*amap2.get(&s.dst_array.0)?),
                    dst_entry: EntryId(*emap2.get(&s.dst_entry.0)?),
                    pattern: s.pattern,
                    msgs: s.msgs,
                })
            })();
            match remapped {
                Some(sig) => sigs2.push(sig),
                None => {
                    diags.push(
                        IngestCode::DanglingReference,
                        file_of(&files, src),
                        src.line as usize,
                        format!("SIG {} references an unknown ARRAY/ENTRY", s.id.0),
                    );
                    diags.skipped += 1;
                }
            }
        }

        let trace = Trace {
            pe_count,
            arrays: arrays2,
            chares: chares2,
            entries: entries2,
            sigs: sigs2,
            tasks: tasks2,
            events: events2,
            msgs: msgs2,
            idles,
        };
        (trace, diags.into_report())
    }
}

/// Sorts a staging table by id (stable) and errors on the first
/// duplicate or hole.
fn require_dense<T>(
    what: &str,
    v: &mut [(T, Src)],
    id: impl Fn(&T) -> u32,
    files: &[String],
) -> Result<(), ParseError> {
    v.sort_by_key(|t| id(&t.0));
    for (i, (t, src)) in v.iter().enumerate() {
        let got = id(t);
        if got as usize == i {
            continue;
        }
        let msg = if i > 0 && got == id(&v[i - 1].0) {
            format!("duplicate {what} record for id {got}")
        } else {
            format!("{what} ids are not dense: missing id {i}")
        };
        return Err(src_err(files, *src, msg));
    }
    Ok(())
}

/// Sorts a staging table by id (stable) and keeps the first record of
/// every id, reporting the rest as `I002`.
fn dedup<T>(
    what: &str,
    v: &mut Vec<(T, Src)>,
    id: impl Fn(&T) -> u32,
    diags: &mut DiagSink,
    files: &[String],
) {
    v.sort_by_key(|t| id(&t.0));
    let mut last: Option<u32> = None;
    v.retain(|(t, src)| {
        let i = id(t);
        if last == Some(i) {
            diags.push(
                IngestCode::DuplicateId,
                file_of(files, *src),
                src.line as usize,
                format!("duplicate {what} record for id {i} skipped"),
            );
            diags.skipped += 1;
            false
        } else {
            last = Some(i);
            true
        }
    });
}

fn slot_map<T>(v: &[(T, Src)], id: impl Fn(&T) -> u32) -> HashMap<u32, u32> {
    v.iter().enumerate().map(|(i, (t, _))| (id(t), i as u32)).collect()
}

fn alive(map: &HashMap<u32, u32>, dropped: &[bool], id: u32) -> bool {
    map.get(&id).is_some_and(|&s| !dropped[s as usize])
}

/// Strips dropped records, maps surviving old ids to new dense ids, and
/// reports the compaction (`I006`) when anything changed.
fn compact<T>(
    what: &str,
    v: Vec<(T, Src)>,
    dropped: &[bool],
    id: impl Fn(&T) -> u32,
    diags: &mut DiagSink,
) -> (Vec<T>, HashMap<u32, u32>) {
    let total = v.len();
    let mut out: Vec<T> = Vec::with_capacity(total);
    let mut map: HashMap<u32, u32> = HashMap::with_capacity(total);
    let mut renumbered = false;
    for (i, (t, _)) in v.into_iter().enumerate() {
        if dropped.get(i).copied().unwrap_or(false) {
            renumbered = true;
            continue;
        }
        let new = out.len() as u32;
        if id(&t) != new {
            renumbered = true;
        }
        map.insert(id(&t), new);
        out.push(t);
    }
    if renumbered {
        diags.push(
            IngestCode::TableCompacted,
            None,
            0,
            format!(
                "{what}: {} of {total} record(s) kept; ids renumbered to a dense range",
                out.len()
            ),
        );
    }
    (out, map)
}

/// Reads a single-document log through the streaming loader.
pub(crate) fn read_single<R: BufRead>(
    r: R,
    salvage: bool,
) -> Result<(Trace, IngestReport), ParseError> {
    let header = crate::logfmt::HEADER;
    let mut ld = Loader::new(salvage);
    let saw = ld.scan(r, None, header, &|_| format!("expected {header:?}"), Section::Whole)?;
    if !saw {
        if !salvage {
            return Err(ParseError::whole("empty input (missing header)"));
        }
        ld.file_diag(None, "empty input (missing header)".to_owned());
    }
    ld.finish()
}
