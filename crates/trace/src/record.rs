//! The record types stored in a [`crate::Trace`].
//!
//! The trace model follows the paper's view of a Charm++-style trace:
//!
//! * a **task** is one uninterruptible execution of an entry method on a
//!   chare (a *serial block*, §3.1.1);
//! * each task carries an ordered list of **dependency events**: at most
//!   one *sink* (the receive of the message that awoke it) followed by
//!   zero or more *sources* (message sends, in physical-time order);
//! * **messages** connect a send event to the task it awakens; a single
//!   send event may fan out to many messages (a broadcast);
//! * **idle spans** record time a PE spent with nothing to schedule.

use crate::ids::{ArrayId, ChareId, EntryId, EventId, Kind, MsgId, PeId, SigId, TaskId};
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metadata for a chare array (an indexed collection of chares) or a
/// runtime group (one chare per PE).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayInfo {
    /// This array's id.
    pub id: ArrayId,
    /// Human-readable name, e.g. `"jacobi"` or `"CkReductionMgr"`.
    pub name: String,
    /// Application or runtime array.
    pub kind: Kind,
}

/// Metadata for one chare.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChareInfo {
    /// This chare's id.
    pub id: ChareId,
    /// The array the chare belongs to.
    pub array: ArrayId,
    /// Index within the array.
    pub index: u32,
    /// Application or runtime chare. Application tasks are grouped by
    /// chare; runtime tasks by their PE (paper §2.1).
    pub kind: Kind,
    /// PE the chare was created on (its home before any migration).
    pub home_pe: PeId,
}

/// Metadata for an entry-method type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryInfo {
    /// This entry method's id.
    pub id: EntryId,
    /// Human-readable name, e.g. `"recvHalo"`.
    pub name: String,
    /// Structured Dagger parse-order number, if this entry was generated
    /// from an SDAG `serial` section (§2.1). Entries with consecutive
    /// numbers on the same chare are heuristically ordered.
    pub sdag_serial: Option<u32>,
    /// True for operations that are part of an abstracted collective
    /// (e.g. `MPI_Allreduce`). Tracing frameworks record this (paper
    /// §7.1: collectives are "represented as single calls"); the
    /// analysis merges each collective instance into one phase.
    #[serde(default)]
    pub collective: bool,
}

/// The communication pattern a declared signature promises.
///
/// Patterns are the *abstract* shapes the declaration layer can state
/// about a message type — the trace-side analogue of what a `.ci` file
/// registration (or an `.sts` entry-method table) reveals before any
/// event is recorded. The static skeleton analysis (`lsr-model`)
/// interprets them; the event stream never needs to be consulted to do
/// so.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommPattern {
    /// Point-to-point within an index neighborhood: a chare at index
    /// `i` may only address indices `j` with `|i - j| <= radius`.
    Neighbor {
        /// Maximum index distance the signature admits.
        radius: u32,
    },
    /// Part of a collective combining/distribution tree (reduction,
    /// broadcast, allreduce) with the given branching factor.
    Tree {
        /// Expected branching factor of the combining tree (>= 1).
        arity: u32,
    },
    /// Unconstrained point-to-point (any pair of chares may talk).
    Any,
    /// The tracing layer could not classify this signature; the model
    /// degrades to "may communicate" for it (diagnostic `M006`).
    Unknown,
}

impl fmt::Display for CommPattern {
    /// The log-format token: `near:R`, `tree:A`, `any`, or `?`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommPattern::Neighbor { radius } => write!(f, "near:{radius}"),
            CommPattern::Tree { arity } => write!(f, "tree:{arity}"),
            CommPattern::Any => write!(f, "any"),
            CommPattern::Unknown => write!(f, "?"),
        }
    }
}

/// A declared message-type signature: the declaration layer's statement
/// that entry `src_entry` on chares of `src_array` may invoke
/// `dst_entry` on chares of `dst_array`, with the given pattern and
/// registered message volume.
///
/// Signatures belong to the trace's *declaration layer* (alongside
/// arrays, chares, and entry methods — they are written to the `.sts`
/// metadata file in the split layout, not to the per-PE event logs).
/// [`crate::TraceBuilder::build`] derives them from the recorded
/// messages when none were declared explicitly, the way a tracing
/// framework derives its registration table at startup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigInfo {
    /// This signature's id.
    pub id: SigId,
    /// Array whose chares send under this signature.
    pub src_array: ArrayId,
    /// Entry method the sending task executes.
    pub src_entry: EntryId,
    /// Array whose chares receive under this signature.
    pub dst_array: ArrayId,
    /// Entry method invoked on the destination.
    pub dst_entry: EntryId,
    /// The declared communication pattern.
    pub pattern: CommPattern,
    /// Registered message volume for this signature (an upper bound on
    /// traffic, used for static phase-count bounds; 0 means "declared
    /// but no volume registered").
    pub msgs: u64,
}

impl SigInfo {
    /// The (src array, src entry, dst array, dst entry) key that
    /// identifies the communication path.
    #[inline]
    pub fn key(&self) -> (ArrayId, EntryId, ArrayId, EntryId) {
        (self.src_array, self.src_entry, self.dst_array, self.dst_entry)
    }
}

/// What a dependency event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// The receive that awoke this task. `msg` is `None` for spontaneous
    /// tasks (e.g. the program's bootstrap task) that have no recorded
    /// trigger.
    Recv {
        /// The delivered message, when its send side was traced.
        msg: Option<MsgId>,
    },
    /// A remote method invocation issued from within the task.
    Send {
        /// First message carried by this send; broadcasts add more
        /// messages referencing the same event.
        msg: MsgId,
    },
}

impl EventKind {
    /// True for sends ("sources" in the paper's terminology).
    #[inline]
    pub fn is_source(self) -> bool {
        matches!(self, EventKind::Send { .. })
    }

    /// True for receives ("sinks").
    #[inline]
    pub fn is_sink(self) -> bool {
        matches!(self, EventKind::Recv { .. })
    }
}

/// One dependency event inside a task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRec {
    /// This event's id.
    pub id: EventId,
    /// The task (serial block) containing the event.
    pub task: TaskId,
    /// When the event occurred.
    pub time: Time,
    /// Send or receive.
    pub kind: EventKind,
}

impl EventRec {
    /// True for sends ("sources").
    #[inline]
    pub fn is_source(&self) -> bool {
        self.kind.is_source()
    }

    /// True for receives ("sinks").
    #[inline]
    pub fn is_sink(&self) -> bool {
        self.kind.is_sink()
    }
}

/// One execution of an entry method: a serial block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRec {
    /// This task's id.
    pub id: TaskId,
    /// The chare the entry method ran on.
    pub chare: ChareId,
    /// The entry-method type.
    pub entry: EntryId,
    /// The PE that executed the block (the chare's location at the time).
    pub pe: PeId,
    /// Begin timestamp.
    pub begin: Time,
    /// End timestamp.
    pub end: Time,
    /// The sink event (receive) that awoke the task, if traced.
    pub sink: Option<EventId>,
    /// Send events issued by the task, in physical-time order.
    pub sends: Vec<EventId>,
}

impl TaskRec {
    /// All dependency events of the block in order: sink first (if any),
    /// then sends.
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.sink.into_iter().chain(self.sends.iter().copied())
    }

    /// Number of dependency events in the block.
    pub fn event_count(&self) -> usize {
        usize::from(self.sink.is_some()) + self.sends.len()
    }
}

/// A message: the edge from a send event to the task it awakens.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgRec {
    /// This message's id.
    pub id: MsgId,
    /// The send event that produced the message.
    pub send_event: EventId,
    /// The task awakened by delivery, if the receive side was traced.
    /// `None` models dependencies lost to the runtime (paper Fig. 24).
    pub recv_task: Option<TaskId>,
    /// Destination chare.
    pub dst_chare: ChareId,
    /// Destination entry method.
    pub dst_entry: EntryId,
    /// Send timestamp (same as the send event's time).
    pub send_time: Time,
    /// Delivery timestamp (begin of the awakened task), if traced.
    pub recv_time: Option<Time>,
}

/// A span of recorded idle time on a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleRec {
    /// The idle PE.
    pub pe: PeId,
    /// Start of the idle span.
    pub begin: Time,
    /// End of the idle span.
    pub end: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task_with(sink: Option<EventId>, sends: Vec<EventId>) -> TaskRec {
        TaskRec {
            id: TaskId(0),
            chare: ChareId(0),
            entry: EntryId(0),
            pe: PeId(0),
            begin: Time(0),
            end: Time(10),
            sink,
            sends,
        }
    }

    #[test]
    fn events_iterates_sink_then_sends() {
        let t = task_with(Some(EventId(5)), vec![EventId(6), EventId(7)]);
        let got: Vec<_> = t.events().collect();
        assert_eq!(got, vec![EventId(5), EventId(6), EventId(7)]);
        assert_eq!(t.event_count(), 3);
    }

    #[test]
    fn events_without_sink() {
        let t = task_with(None, vec![EventId(1)]);
        let got: Vec<_> = t.events().collect();
        assert_eq!(got, vec![EventId(1)]);
        assert_eq!(t.event_count(), 1);
    }

    #[test]
    fn comm_pattern_tokens() {
        assert_eq!(CommPattern::Neighbor { radius: 2 }.to_string(), "near:2");
        assert_eq!(CommPattern::Tree { arity: 4 }.to_string(), "tree:4");
        assert_eq!(CommPattern::Any.to_string(), "any");
        assert_eq!(CommPattern::Unknown.to_string(), "?");
    }

    #[test]
    fn sig_key_packs_endpoints() {
        let s = SigInfo {
            id: SigId(0),
            src_array: ArrayId(1),
            src_entry: EntryId(2),
            dst_array: ArrayId(3),
            dst_entry: EntryId(4),
            pattern: CommPattern::Any,
            msgs: 7,
        };
        assert_eq!(s.key(), (ArrayId(1), EntryId(2), ArrayId(3), EntryId(4)));
    }

    #[test]
    fn event_kind_predicates() {
        assert!(EventKind::Send { msg: MsgId(0) }.is_source());
        assert!(!EventKind::Send { msg: MsgId(0) }.is_sink());
        assert!(EventKind::Recv { msg: None }.is_sink());
        assert!(EventKind::Recv { msg: Some(MsgId(1)) }.is_sink());
    }
}
