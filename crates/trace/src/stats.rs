//! Summary statistics over a trace.

use crate::ids::Kind;
use crate::time::Dur;
use crate::trace::Trace;
use std::fmt;

/// Aggregate counts and durations for one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of PEs.
    pub pes: u32,
    /// Number of application chares.
    pub app_chares: usize,
    /// Number of runtime chares.
    pub runtime_chares: usize,
    /// Number of tasks (serial blocks).
    pub tasks: usize,
    /// Number of tasks on runtime chares.
    pub runtime_tasks: usize,
    /// Number of dependency events.
    pub events: usize,
    /// Number of messages.
    pub msgs: usize,
    /// Messages whose receive side was traced.
    pub matched_msgs: usize,
    /// Total busy time summed over tasks.
    pub busy: Dur,
    /// Total recorded idle time summed over PEs.
    pub idle: Dur,
    /// Wall-clock span of the run.
    pub span: Dur,
    /// Mean task grain size (busy / tasks), zero if no tasks.
    pub mean_grain: Dur,
}

impl TraceStats {
    /// Computes statistics for `trace` in one pass per table.
    pub fn compute(trace: &Trace) -> TraceStats {
        let (begin, end) = trace.span();
        let busy: Dur = trace.tasks.iter().map(|t| t.end - t.begin).sum();
        let idle: Dur = trace.idles.iter().map(|i| i.end - i.begin).sum();
        let tasks = trace.tasks.len();
        TraceStats {
            pes: trace.pe_count,
            app_chares: trace.chares.iter().filter(|c| c.kind == Kind::Application).count(),
            runtime_chares: trace.chares.iter().filter(|c| c.kind == Kind::Runtime).count(),
            tasks,
            runtime_tasks: trace
                .tasks
                .iter()
                .filter(|t| trace.chare(t.chare).kind.is_runtime())
                .count(),
            events: trace.events.len(),
            msgs: trace.msgs.len(),
            matched_msgs: trace.msgs.iter().filter(|m| m.recv_task.is_some()).count(),
            busy,
            idle,
            span: end - begin,
            mean_grain: if tasks == 0 { Dur::ZERO } else { Dur(busy.0 / tasks as u64) },
        }
    }

    /// Fraction of run time (span × PEs) spent busy; in [0, 1] for
    /// well-formed traces.
    pub fn utilization(&self) -> f64 {
        let capacity = self.span.0.saturating_mul(self.pes as u64);
        if capacity == 0 {
            0.0
        } else {
            self.busy.0 as f64 / capacity as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pes={} chares={}+{}rt tasks={} ({} rt) events={} msgs={} ({} matched)",
            self.pes,
            self.app_chares,
            self.runtime_chares,
            self.tasks,
            self.runtime_tasks,
            self.events,
            self.msgs,
            self.matched_msgs
        )?;
        write!(
            f,
            "span={} busy={} idle={} grain={} util={:.1}%",
            self.span,
            self.busy,
            self.idle,
            self.mean_grain,
            self.utilization() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::PeId;
    use crate::time::Time;

    #[test]
    fn stats_of_empty_trace() {
        let tr = TraceBuilder::new(4).build().unwrap();
        let s = TraceStats::compute(&tr);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.mean_grain, Dur::ZERO);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn stats_count_runtime_separately() {
        let mut b = TraceBuilder::new(2);
        let app = b.add_array("a", Kind::Application);
        let rt = b.add_array("r", Kind::Runtime);
        let c0 = b.add_chare(app, 0, PeId(0));
        let c1 = b.add_chare(rt, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let m = b.record_send(t0, Time(2), c1, e);
        b.end_task(t0, Time(10));
        let t1 = b.begin_task_from(c1, e, PeId(0), Time(10), m);
        b.end_task(t1, Time(20));
        b.add_idle(PeId(1), Time(0), Time(20));
        let tr = b.build().unwrap();
        let s = TraceStats::compute(&tr);
        assert_eq!(s.app_chares, 1);
        assert_eq!(s.runtime_chares, 1);
        assert_eq!(s.tasks, 2);
        assert_eq!(s.runtime_tasks, 1);
        assert_eq!(s.matched_msgs, 1);
        assert_eq!(s.busy, Dur(20));
        assert_eq!(s.idle, Dur(20));
        assert_eq!(s.span, Dur(20));
        // 20 busy ns over 2 PEs × 20 ns span = 50%
        assert!((s.utilization() - 0.5).abs() < 1e-9);
        let shown = s.to_string();
        assert!(shown.contains("tasks=2"));
        assert!(shown.contains("util=50.0%"));
    }
}
