//! Physical (recorded) time.
//!
//! Trace timestamps are nanoseconds since the start of the traced run,
//! stored as `u64`. The absolute scale is immaterial to the ordering
//! algorithm; only comparisons and durations matter.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in physical time, in nanoseconds since run start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(pub u64);

/// A span of physical time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Dur(pub u64);

impl Time {
    /// Time zero: the start of the traced run.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time.
    pub const MAX: Time = Time(u64::MAX);

    /// Nanoseconds since run start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Builds a time from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Duration from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty duration.
    pub const ZERO: Dur = Dur(0);

    /// Nanoseconds in this span.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// This duration as (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction of durations.
    #[inline]
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    /// Exact duration between two times.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs > self`.
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        debug_assert!(rhs <= self, "negative duration: {rhs} > {self}");
        Dur(self.0 - rhs.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = Time::from_micros(5);
        let d = Dur::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + d, Time(8_000));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Time(5).saturating_since(Time(10)), Dur::ZERO);
        assert_eq!(Time(10).saturating_since(Time(4)), Dur(6));
    }

    #[test]
    fn sum_of_durations() {
        let total: Dur = [Dur(1), Dur(2), Dur(3)].into_iter().sum();
        assert_eq!(total, Dur(6));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Dur(999).to_string(), "999ns");
        assert_eq!(Dur(1_500).to_string(), "1.500us");
        assert_eq!(Dur(2_000_000).to_string(), "2.000ms");
        assert_eq!(Time(7).to_string(), "7ns");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = Time::ZERO;
        t += Dur(10);
        t += Dur(5);
        assert_eq!(t, Time(15));
        let mut d = Dur::ZERO;
        d += Dur(4);
        assert_eq!(d, Dur(4));
    }
}
