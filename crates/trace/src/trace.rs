//! The [`Trace`] container and its derived indexes.

use crate::ids::{ArrayId, ChareId, EntryId, EventId, MsgId, PeId, SigId, TaskId};
use crate::record::{ArrayInfo, ChareInfo, EntryInfo, EventRec, IdleRec, MsgRec, SigInfo, TaskRec};
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// A complete event trace of one run.
///
/// All tables are indexed densely by the corresponding id. Construct via
/// [`crate::TraceBuilder`]; the builder validates the cross-references
/// (see [`crate::validate()`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of PEs in the run.
    pub pe_count: u32,
    /// Chare array metadata.
    pub arrays: Vec<ArrayInfo>,
    /// Chare metadata.
    pub chares: Vec<ChareInfo>,
    /// Entry-method metadata.
    pub entries: Vec<EntryInfo>,
    /// Declared message-type signatures (declaration layer; defaults
    /// to empty for traces recorded before signatures existed).
    #[serde(default)]
    pub sigs: Vec<SigInfo>,
    /// Serial blocks (entry-method executions).
    pub tasks: Vec<TaskRec>,
    /// Dependency events.
    pub events: Vec<EventRec>,
    /// Messages.
    pub msgs: Vec<MsgRec>,
    /// Recorded idle spans, sorted by (pe, begin).
    pub idles: Vec<IdleRec>,
}

impl Trace {
    /// Looks up a task record.
    #[inline]
    pub fn task(&self, id: TaskId) -> &TaskRec {
        &self.tasks[id.index()]
    }

    /// Looks up an event record.
    #[inline]
    pub fn event(&self, id: EventId) -> &EventRec {
        &self.events[id.index()]
    }

    /// Looks up a message record.
    #[inline]
    pub fn msg(&self, id: MsgId) -> &MsgRec {
        &self.msgs[id.index()]
    }

    /// Looks up a chare record.
    #[inline]
    pub fn chare(&self, id: ChareId) -> &ChareInfo {
        &self.chares[id.index()]
    }

    /// Looks up an array record.
    #[inline]
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.index()]
    }

    /// Looks up an entry-method record.
    #[inline]
    pub fn entry(&self, id: EntryId) -> &EntryInfo {
        &self.entries[id.index()]
    }

    /// Looks up a declared message-type signature.
    #[inline]
    pub fn sig(&self, id: SigId) -> &SigInfo {
        &self.sigs[id.index()]
    }

    /// The trace's *declaration layer*: PE count, arrays, chares, entry
    /// methods, and message-type signatures — everything a tracing
    /// framework registers before the run produces events. Static
    /// analyses (`lsr-model`) take this view instead of the whole
    /// [`Trace`] so the type system guarantees they never read the
    /// event stream.
    #[inline]
    pub fn declarations(&self) -> Declarations<'_> {
        Declarations {
            pe_count: self.pe_count,
            arrays: &self.arrays,
            chares: &self.chares,
            entries: &self.entries,
            sigs: &self.sigs,
        }
    }

    /// The chare a dependency event belongs to.
    #[inline]
    pub fn event_chare(&self, id: EventId) -> ChareId {
        self.task(self.event(id).task).chare
    }

    /// True if the task runs on a runtime chare.
    #[inline]
    pub fn task_is_runtime(&self, id: TaskId) -> bool {
        self.chare(self.task(id).chare).kind.is_runtime()
    }

    /// The *timeline* a task is drawn on / grouped by: application tasks
    /// group by their chare, runtime tasks by their PE (paper §2.1).
    pub fn task_lane(&self, id: TaskId) -> Lane {
        let t = self.task(id);
        if self.chare(t.chare).kind.is_runtime() {
            Lane::RuntimePe(t.pe)
        } else {
            Lane::Chare(t.chare)
        }
    }

    /// All task ids in trace order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId::from_index)
    }

    /// All event ids in trace order.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.events.len()).map(EventId::from_index)
    }

    /// All message ids in trace order.
    pub fn msg_ids(&self) -> impl Iterator<Item = MsgId> + '_ {
        (0..self.msgs.len()).map(MsgId::from_index)
    }

    /// Total run span: from the earliest task begin to the latest task end.
    pub fn span(&self) -> (Time, Time) {
        let begin = self.tasks.iter().map(|t| t.begin).min().unwrap_or(Time::ZERO);
        let end = self.tasks.iter().map(|t| t.end).max().unwrap_or(Time::ZERO);
        (begin, end)
    }

    /// Builds the derived per-lane/per-PE orderings used throughout the
    /// ordering algorithm. O(n log n).
    pub fn index(&self) -> TraceIndex {
        TraceIndex::build(self)
    }

    /// Matched messages as task-level happened-before edges: the
    /// sending task before the task the delivery awakened. Unmatched
    /// messages are skipped; self-sends (`from == to`) are included —
    /// graph builders that cannot tolerate trivial loops must filter
    /// them. Shared by the lint crate's HB engine and the extraction
    /// pipeline so both see the same dependency set.
    pub fn message_edges(&self) -> impl Iterator<Item = MsgEdge> + '_ {
        self.msgs.iter().filter_map(|m| {
            m.recv_task.map(|to| MsgEdge { msg: m.id, from: self.event(m.send_event).task, to })
        })
    }
}

/// A read-only view of a trace's declaration layer (see
/// [`Trace::declarations`]): the metadata tables only, with no access
/// to tasks, events, messages, or idle spans. Holding one of these is
/// a proof that an analysis is static.
#[derive(Debug, Clone, Copy)]
pub struct Declarations<'a> {
    /// Number of PEs in the run.
    pub pe_count: u32,
    /// Chare array metadata.
    pub arrays: &'a [ArrayInfo],
    /// Chare metadata.
    pub chares: &'a [ChareInfo],
    /// Entry-method metadata.
    pub entries: &'a [EntryInfo],
    /// Declared message-type signatures.
    pub sigs: &'a [SigInfo],
}

impl Declarations<'_> {
    /// Looks up an array record.
    #[inline]
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.index()]
    }

    /// Looks up a chare record.
    #[inline]
    pub fn chare(&self, id: ChareId) -> &ChareInfo {
        &self.chares[id.index()]
    }

    /// Looks up an entry-method record.
    #[inline]
    pub fn entry(&self, id: EntryId) -> &EntryInfo {
        &self.entries[id.index()]
    }

    /// Number of chares declared in `array`.
    pub fn chare_count(&self, array: ArrayId) -> u32 {
        self.chares.iter().filter(|c| c.array == array).count() as u32
    }
}

/// A matched message viewed as a task-level edge of the
/// happened-before relation (see [`Trace::message_edges`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgEdge {
    /// The message that induces the edge.
    pub msg: MsgId,
    /// The task whose send event emitted the message.
    pub from: TaskId,
    /// The task the delivery awakened.
    pub to: TaskId,
}

/// The grouping timeline for a task: a chare lane for application tasks,
/// a per-PE runtime lane for runtime tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// An application chare's timeline.
    Chare(ChareId),
    /// The runtime timeline of a PE.
    RuntimePe(PeId),
}

/// Derived orderings over a [`Trace`]: tasks sorted by time per PE and per
/// chare, and the position of each task within those orders.
#[derive(Debug, Clone)]
pub struct TraceIndex {
    /// Tasks per PE, sorted by begin time.
    pub tasks_by_pe: Vec<Vec<TaskId>>,
    /// Tasks per chare, sorted by begin time.
    pub tasks_by_chare: Vec<Vec<TaskId>>,
    /// For each task, its rank within its PE's sorted order.
    pub pe_pos: Vec<u32>,
    /// For each task, its rank within its chare's sorted order.
    pub chare_pos: Vec<u32>,
}

impl TraceIndex {
    fn build(trace: &Trace) -> TraceIndex {
        let mut tasks_by_pe: Vec<Vec<TaskId>> = vec![Vec::new(); trace.pe_count as usize];
        let mut tasks_by_chare: Vec<Vec<TaskId>> = vec![Vec::new(); trace.chares.len()];
        for t in &trace.tasks {
            tasks_by_pe[t.pe.index()].push(t.id);
            tasks_by_chare[t.chare.index()].push(t.id);
        }
        let by_begin = |a: &TaskId, b: &TaskId| {
            let (ta, tb) = (trace.task(*a), trace.task(*b));
            ta.begin.cmp(&tb.begin).then(a.cmp(b))
        };
        let mut pe_pos = vec![0u32; trace.tasks.len()];
        let mut chare_pos = vec![0u32; trace.tasks.len()];
        for list in &mut tasks_by_pe {
            list.sort_unstable_by(by_begin);
            for (i, t) in list.iter().enumerate() {
                pe_pos[t.index()] = i as u32;
            }
        }
        for list in &mut tasks_by_chare {
            list.sort_unstable_by(by_begin);
            for (i, t) in list.iter().enumerate() {
                chare_pos[t.index()] = i as u32;
            }
        }
        TraceIndex { tasks_by_pe, tasks_by_chare, pe_pos, chare_pos }
    }

    /// The task executed immediately before `t` on the same PE, if any.
    pub fn prev_on_pe(&self, trace: &Trace, t: TaskId) -> Option<TaskId> {
        let pe = trace.task(t).pe;
        let pos = self.pe_pos[t.index()] as usize;
        (pos > 0).then(|| self.tasks_by_pe[pe.index()][pos - 1])
    }

    /// The task executed immediately after `t` on the same PE, if any.
    pub fn next_on_pe(&self, trace: &Trace, t: TaskId) -> Option<TaskId> {
        let pe = trace.task(t).pe;
        let pos = self.pe_pos[t.index()] as usize + 1;
        self.tasks_by_pe[pe.index()].get(pos).copied()
    }

    /// The previous task of the same chare in physical time, if any.
    pub fn prev_on_chare(&self, trace: &Trace, t: TaskId) -> Option<TaskId> {
        let ch = trace.task(t).chare;
        let pos = self.chare_pos[t.index()] as usize;
        (pos > 0).then(|| self.tasks_by_chare[ch.index()][pos - 1])
    }

    /// The next task of the same chare in physical time, if any.
    pub fn next_on_chare(&self, trace: &Trace, t: TaskId) -> Option<TaskId> {
        let ch = trace.task(t).chare;
        let pos = self.chare_pos[t.index()] as usize + 1;
        self.tasks_by_chare[ch.index()].get(pos).copied()
    }

    /// Program-order edges: consecutive serial blocks on one PE, for
    /// every PE. Together with [`Trace::message_edges`] this is the
    /// generating edge set of the schedule happened-before relation.
    pub fn program_order_edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        adjacent_pairs(&self.tasks_by_pe)
    }

    /// Chare-order edges: consecutive tasks of one chare in begin-time
    /// order, for every chare. These are control dependencies in the
    /// message-passing model (each rank runs a deterministic program)
    /// but *not* in the Charm++ model, where delivery order to a chare
    /// is a scheduler decision.
    pub fn chare_order_edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        adjacent_pairs(&self.tasks_by_chare)
    }
}

fn adjacent_pairs(lists: &[Vec<TaskId>]) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
    lists.iter().flat_map(|list| list.windows(2).map(|w| (w[0], w[1])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::Kind;
    use crate::time::Dur;

    /// Two chares on two PEs; ch0 sends to ch1 twice.
    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2);
        let arr = b.add_array("work", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let c1 = b.add_chare(arr, 1, PeId(1));
        let e = b.add_entry("go", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let s0 = b.record_send(t0, Time(5), c1, e);
        let s1 = b.record_send(t0, Time(8), c1, e);
        b.end_task(t0, Time(10));
        let t1 = b.begin_task_from(c1, e, PeId(1), Time(20), s0);
        b.end_task(t1, Time(25));
        let t2 = b.begin_task_from(c1, e, PeId(1), Time(30), s1);
        b.end_task(t2, Time(40));
        b.add_idle(PeId(1), Time(0), Time(20));
        b.build().expect("valid trace")
    }

    #[test]
    fn accessors_resolve_ids() {
        let tr = sample();
        assert_eq!(tr.tasks.len(), 3);
        assert_eq!(tr.msgs.len(), 2);
        assert_eq!(tr.task(TaskId(0)).sends.len(), 2);
        assert_eq!(tr.event_chare(tr.task(TaskId(0)).sends[0]), ChareId(0));
        assert!(!tr.task_is_runtime(TaskId(0)));
        assert_eq!(tr.span(), (Time(0), Time(40)));
    }

    #[test]
    fn lanes_group_app_by_chare() {
        let tr = sample();
        assert_eq!(tr.task_lane(TaskId(0)), Lane::Chare(ChareId(0)));
        assert_eq!(tr.task_lane(TaskId(1)), Lane::Chare(ChareId(1)));
    }

    #[test]
    fn runtime_lane_groups_by_pe() {
        let mut b = TraceBuilder::new(1);
        let arr = b.add_array("mgr", Kind::Runtime);
        let c = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("reduce", None);
        let t = b.begin_task(c, e, PeId(0), Time(0));
        b.end_task(t, Time(1));
        let tr = b.build().unwrap();
        assert_eq!(tr.task_lane(TaskId(0)), Lane::RuntimePe(PeId(0)));
        assert!(tr.task_is_runtime(TaskId(0)));
    }

    #[test]
    fn index_orders_tasks_by_time() {
        let tr = sample();
        let ix = tr.index();
        assert_eq!(ix.tasks_by_pe[1], vec![TaskId(1), TaskId(2)]);
        assert_eq!(ix.tasks_by_chare[1], vec![TaskId(1), TaskId(2)]);
        assert_eq!(ix.prev_on_pe(&tr, TaskId(2)), Some(TaskId(1)));
        assert_eq!(ix.next_on_pe(&tr, TaskId(1)), Some(TaskId(2)));
        assert_eq!(ix.prev_on_pe(&tr, TaskId(1)), None);
        assert_eq!(ix.prev_on_chare(&tr, TaskId(2)), Some(TaskId(1)));
        assert_eq!(ix.next_on_chare(&tr, TaskId(2)), None);
        assert_eq!(ix.next_on_chare(&tr, TaskId(1)), Some(TaskId(2)));
    }

    #[test]
    fn edge_iterators_cover_order_and_messages() {
        let tr = sample();
        let ix = tr.index();
        let po: Vec<_> = ix.program_order_edges().collect();
        assert_eq!(po, vec![(TaskId(1), TaskId(2))]);
        let co: Vec<_> = ix.chare_order_edges().collect();
        assert_eq!(co, vec![(TaskId(1), TaskId(2))]);
        let me: Vec<_> = tr.message_edges().collect();
        assert_eq!(me.len(), 2);
        assert_eq!(me[0], MsgEdge { msg: me[0].msg, from: TaskId(0), to: TaskId(1) });
        assert_eq!((me[1].from, me[1].to), (TaskId(0), TaskId(2)));
    }

    #[test]
    fn span_of_empty_trace_is_zero() {
        let tr = TraceBuilder::new(1).build().unwrap();
        assert_eq!(tr.span(), (Time::ZERO, Time::ZERO));
        let _ = Dur::ZERO;
    }
}
