//! Structural validation of traces.
//!
//! A trace coming out of a simulator or a log parser must satisfy the
//! invariants the ordering algorithm relies on. Two entry points cover
//! the two consumers:
//!
//! * [`validate`] / [`validate_with_limit`] collect **every** violation
//!   (capped at a configurable limit), so diagnostic tools like
//!   `lsr lint` can report a corrupt trace in one pass;
//! * [`validate_fast`] short-circuits at the first violation — the hot
//!   path used by [`crate::TraceBuilder::build`] and the log parsers.
//!
//! Checks run in two phases: first table/id/reference integrity, then —
//! only when every reference resolves — the semantic cross-checks that
//! must dereference those ids. When the integrity phase finds errors,
//! the semantic phase is skipped (its dereferences would be out of
//! bounds), so a collect-all run on a refs-corrupt trace reports all
//! integrity violations but no semantic ones.

use crate::ids::{EventId, MsgId, TaskId};
use crate::record::EventKind;
use crate::trace::Trace;
use std::fmt;

/// Upper bound on `pe_count` accepted by [`validate`]. Per-PE index
/// structures are allocated eagerly, so an absurd count in a corrupt
/// or hostile trace file would otherwise exhaust memory before any
/// cross-reference check runs. Raise this if you genuinely analyze
/// machines beyond a million processors.
pub const MAX_PES: u32 = 1 << 20;

/// Default cap on the number of violations collected by [`validate`].
pub const DEFAULT_ERROR_LIMIT: usize = 64;

/// A violated trace invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A task was never closed with `end_task`.
    OpenTask(TaskId),
    /// `pe_count` exceeds [`MAX_PES`].
    PeCountTooLarge(u32),
    /// A record's id does not match its table position.
    IdMismatch(&'static str, usize),
    /// A record references an out-of-range id.
    DanglingRef(&'static str, usize),
    /// A task ends before it begins.
    NegativeTaskSpan(TaskId),
    /// An event's timestamp lies outside its task's span.
    EventOutsideTask(EventId),
    /// A task's sink event is not at the task's begin time.
    SinkNotAtBegin(TaskId),
    /// A task's send events are not in non-decreasing time order.
    SendsOutOfOrder(TaskId),
    /// A message's endpoints disagree (send event kind, sink backlink,
    /// or timestamps inconsistent).
    InconsistentMessage(MsgId),
    /// Two tasks overlap on the same PE (serial blocks are
    /// uninterruptible, so this cannot happen in a well-formed trace).
    OverlappingTasks(TaskId, TaskId),
    /// An idle span is empty/inverted or on an out-of-range PE.
    BadIdleSpan(usize),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OpenTask(t) => write!(f, "task {t} was never closed"),
            ValidationError::PeCountTooLarge(n) => {
                write!(f, "pe_count {n} exceeds the supported maximum of {MAX_PES}")
            }
            ValidationError::IdMismatch(table, i) => {
                write!(f, "{table}[{i}] has an id different from its position")
            }
            ValidationError::DanglingRef(what, i) => {
                write!(f, "dangling {what} reference at index {i}")
            }
            ValidationError::NegativeTaskSpan(t) => write!(f, "task {t} ends before it begins"),
            ValidationError::EventOutsideTask(e) => {
                write!(f, "event {e} is outside its task's time span")
            }
            ValidationError::SinkNotAtBegin(t) => {
                write!(f, "task {t} has a sink event not at its begin time")
            }
            ValidationError::SendsOutOfOrder(t) => {
                write!(f, "task {t} has send events out of time order")
            }
            ValidationError::InconsistentMessage(m) => {
                write!(f, "message {m} has inconsistent endpoints")
            }
            ValidationError::OverlappingTasks(a, b) => {
                write!(f, "tasks {a} and {b} overlap on the same PE")
            }
            ValidationError::BadIdleSpan(i) => write!(f, "idle span {i} is malformed"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks every structural invariant of `trace`, collecting all
/// violations up to [`DEFAULT_ERROR_LIMIT`].
pub fn validate(trace: &Trace) -> Result<(), Vec<ValidationError>> {
    validate_with_limit(trace, DEFAULT_ERROR_LIMIT)
}

/// [`validate`] with an explicit cap on the number of collected
/// violations (`limit` is clamped to at least 1).
pub fn validate_with_limit(trace: &Trace, limit: usize) -> Result<(), Vec<ValidationError>> {
    let mut errs = Vec::new();
    collect(trace, limit.max(1), &mut errs);
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Checks every structural invariant of `trace`, returning the first
/// violation found. The short-circuiting path for pipeline code that
/// only needs a go/no-go answer.
pub fn validate_fast(trace: &Trace) -> Result<(), ValidationError> {
    let mut errs = Vec::new();
    collect(trace, 1, &mut errs);
    match errs.pop() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Pushes `$e` and returns from the enclosing function once the cap is
/// reached (with `limit == 1` this is exactly the short-circuit path).
macro_rules! emit {
    ($errs:ident, $limit:ident, $e:expr) => {
        $errs.push($e);
        if $errs.len() >= $limit {
            return;
        }
    };
}

fn collect(trace: &Trace, limit: usize, errs: &mut Vec<ValidationError>) {
    use ValidationError as E;

    // Checked first: everything below allocates per-PE structures. An
    // absurd count also makes further collection pointless.
    if trace.pe_count > MAX_PES {
        errs.push(E::PeCountTooLarge(trace.pe_count));
        return;
    }

    // ---- Phase 1: table positions and reference integrity. ----------
    let before_refs = errs.len();

    for (i, a) in trace.arrays.iter().enumerate() {
        if a.id.index() != i {
            emit!(errs, limit, E::IdMismatch("arrays", i));
        }
    }
    for (i, c) in trace.chares.iter().enumerate() {
        if c.id.index() != i {
            emit!(errs, limit, E::IdMismatch("chares", i));
        }
        if c.array.index() >= trace.arrays.len() {
            emit!(errs, limit, E::DanglingRef("chare.array", i));
            continue;
        }
        if c.home_pe.0 >= trace.pe_count {
            emit!(errs, limit, E::DanglingRef("chare.home_pe", i));
        }
        if c.kind != trace.array(c.array).kind {
            emit!(errs, limit, E::IdMismatch("chares.kind", i));
        }
    }
    for (i, e) in trace.entries.iter().enumerate() {
        if e.id.index() != i {
            emit!(errs, limit, E::IdMismatch("entries", i));
        }
    }
    for (i, s) in trace.sigs.iter().enumerate() {
        if s.id.index() != i {
            emit!(errs, limit, E::IdMismatch("sigs", i));
        }
        if s.src_array.index() >= trace.arrays.len() {
            emit!(errs, limit, E::DanglingRef("sig.src_array", i));
        }
        if s.src_entry.index() >= trace.entries.len() {
            emit!(errs, limit, E::DanglingRef("sig.src_entry", i));
        }
        if s.dst_array.index() >= trace.arrays.len() {
            emit!(errs, limit, E::DanglingRef("sig.dst_array", i));
        }
        if s.dst_entry.index() >= trace.entries.len() {
            emit!(errs, limit, E::DanglingRef("sig.dst_entry", i));
        }
    }
    for (i, t) in trace.tasks.iter().enumerate() {
        if t.id.index() != i {
            emit!(errs, limit, E::IdMismatch("tasks", i));
        }
        if t.chare.index() >= trace.chares.len() {
            emit!(errs, limit, E::DanglingRef("task.chare", i));
        }
        if t.entry.index() >= trace.entries.len() {
            emit!(errs, limit, E::DanglingRef("task.entry", i));
        }
        if t.pe.0 >= trace.pe_count {
            emit!(errs, limit, E::DanglingRef("task.pe", i));
        }
        if let Some(sink) = t.sink {
            if sink.index() >= trace.events.len() {
                emit!(errs, limit, E::DanglingRef("task.sink", i));
            }
        }
        for &s in &t.sends {
            if s.index() >= trace.events.len() {
                emit!(errs, limit, E::DanglingRef("task.sends", i));
            }
        }
    }
    for (i, ev) in trace.events.iter().enumerate() {
        if ev.id.index() != i {
            emit!(errs, limit, E::IdMismatch("events", i));
        }
        if ev.task.index() >= trace.tasks.len() {
            emit!(errs, limit, E::DanglingRef("event.task", i));
        }
        match ev.kind {
            EventKind::Recv { msg: Some(m) } | EventKind::Send { msg: m } => {
                if m.index() >= trace.msgs.len() {
                    emit!(errs, limit, E::DanglingRef("event.msg", i));
                }
            }
            EventKind::Recv { msg: None } => {}
        }
    }
    for (i, m) in trace.msgs.iter().enumerate() {
        if m.id.index() != i {
            emit!(errs, limit, E::IdMismatch("msgs", i));
        }
        if m.send_event.index() >= trace.events.len() {
            emit!(errs, limit, E::DanglingRef("msg.send_event", i));
        }
        if m.dst_chare.index() >= trace.chares.len() {
            emit!(errs, limit, E::DanglingRef("msg.dst_chare", i));
        }
        if m.dst_entry.index() >= trace.entries.len() {
            emit!(errs, limit, E::DanglingRef("msg.dst_entry", i));
        }
        if let Some(rt) = m.recv_task {
            if rt.index() >= trace.tasks.len() {
                emit!(errs, limit, E::DanglingRef("msg.recv_task", i));
            }
        }
    }

    // The semantic phase dereferences ids freely; it only runs when the
    // integrity phase found every reference in range.
    if errs.len() > before_refs {
        return;
    }

    // ---- Phase 2: semantic cross-checks. ----------------------------
    for (i, t) in trace.tasks.iter().enumerate() {
        if t.end < t.begin {
            emit!(errs, limit, E::NegativeTaskSpan(t.id));
        }
        if let Some(sink) = t.sink {
            let ev = trace.event(sink);
            if !ev.is_sink() || ev.task != t.id {
                emit!(errs, limit, E::DanglingRef("task.sink", i));
            } else if ev.time != t.begin {
                emit!(errs, limit, E::SinkNotAtBegin(t.id));
            }
        }
        let mut last = t.begin;
        let mut order_reported = false;
        for &s in &t.sends {
            let ev = trace.event(s);
            if !ev.is_source() || ev.task != t.id {
                emit!(errs, limit, E::DanglingRef("task.sends", i));
                continue;
            }
            if ev.time < last && !order_reported {
                emit!(errs, limit, E::SendsOutOfOrder(t.id));
                order_reported = true;
            }
            last = last.max(ev.time);
        }
    }

    for ev in &trace.events {
        let t = trace.task(ev.task);
        if ev.time < t.begin || ev.time > t.end {
            emit!(errs, limit, E::EventOutsideTask(ev.id));
        }
    }

    for m in &trace.msgs {
        let sev = trace.event(m.send_event);
        if !sev.is_source() || sev.time != m.send_time {
            emit!(errs, limit, E::InconsistentMessage(m.id));
        }
        match (m.recv_task, m.recv_time) {
            (Some(rt), Some(rtime)) => {
                let task = trace.task(rt);
                if task.begin != rtime {
                    emit!(errs, limit, E::InconsistentMessage(m.id));
                    continue;
                }
                let Some(sink) = task.sink else {
                    emit!(errs, limit, E::InconsistentMessage(m.id));
                    continue;
                };
                if trace.event(sink).kind != (EventKind::Recv { msg: Some(m.id) }) {
                    emit!(errs, limit, E::InconsistentMessage(m.id));
                }
            }
            (None, None) => {}
            _ => {
                emit!(errs, limit, E::InconsistentMessage(m.id));
            }
        }
    }

    // Serial blocks on one PE may not overlap (touching endpoints allowed).
    let ix = trace.index();
    for list in &ix.tasks_by_pe {
        for pair in list.windows(2) {
            let (a, b) = (trace.task(pair[0]), trace.task(pair[1]));
            if b.begin < a.end {
                emit!(errs, limit, E::OverlappingTasks(a.id, b.id));
            }
        }
    }

    for (i, idle) in trace.idles.iter().enumerate() {
        if idle.end <= idle.begin || idle.pe.0 >= trace.pe_count {
            emit!(errs, limit, E::BadIdleSpan(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{Kind, PeId};
    use crate::time::Time;

    fn base() -> TraceBuilder {
        TraceBuilder::new(2)
    }

    #[test]
    fn empty_trace_is_valid() {
        let tr = base().build_unchecked();
        assert_eq!(validate(&tr), Ok(()));
        assert_eq!(validate_fast(&tr), Ok(()));
    }

    #[test]
    fn detects_overlapping_tasks_on_pe() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let c1 = b.add_chare(arr, 1, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        b.end_task(t0, Time(10));
        let t1 = b.begin_task(c1, e, PeId(0), Time(5));
        b.end_task(t1, Time(15));
        let tr = b.build_unchecked();
        assert!(matches!(validate_fast(&tr), Err(ValidationError::OverlappingTasks(_, _))));
    }

    #[test]
    fn touching_tasks_are_fine() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        b.end_task(t0, Time(10));
        let t1 = b.begin_task(c0, e, PeId(0), Time(10));
        b.end_task(t1, Time(20));
        assert_eq!(validate(&b.build_unchecked()), Ok(()));
    }

    #[test]
    fn detects_event_outside_task() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let _m = b.record_send(t0, Time(50), c0, e);
        b.end_task(t0, Time(10)); // send at t=50 now outside [0,10]
        let tr = b.build_unchecked();
        assert!(matches!(validate_fast(&tr), Err(ValidationError::EventOutsideTask(_))));
    }

    #[test]
    fn detects_pe_out_of_range() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(7), Time(0));
        b.end_task(t0, Time(1));
        let tr = b.build_unchecked();
        assert!(matches!(validate_fast(&tr), Err(ValidationError::DanglingRef("task.pe", _))));
    }

    #[test]
    fn detects_tampered_message() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let c1 = b.add_chare(arr, 1, PeId(1));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let m = b.record_send(t0, Time(1), c1, e);
        b.end_task(t0, Time(2));
        let t1 = b.begin_task_from(c1, e, PeId(1), Time(4), m);
        b.end_task(t1, Time(5));
        let mut tr = b.build_unchecked();
        tr.msgs[m.index()].recv_time = Some(Time(3)); // no longer the task begin
        assert!(matches!(validate_fast(&tr), Err(ValidationError::InconsistentMessage(_))));
    }

    #[test]
    fn detects_dangling_sig_reference() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let e = b.add_entry("m", None);
        b.declare_sig(arr, e, arr, e, crate::record::CommPattern::Any, 1);
        let mut tr = b.build_unchecked();
        tr.sigs[0].dst_entry = crate::ids::EntryId(9);
        assert!(matches!(
            validate_fast(&tr),
            Err(ValidationError::DanglingRef("sig.dst_entry", 0))
        ));
        tr.sigs[0].dst_entry = e;
        tr.sigs[0].id = crate::ids::SigId(5);
        assert!(matches!(validate_fast(&tr), Err(ValidationError::IdMismatch("sigs", 0))));
    }

    #[test]
    fn detects_malformed_idle() {
        let mut b = base();
        b.add_idle(PeId(0), Time(1), Time(5));
        let mut tr = b.build_unchecked();
        tr.idles[0].pe = PeId(9);
        assert_eq!(validate(&tr), Err(vec![ValidationError::BadIdleSpan(0)]));
    }

    #[test]
    fn absurd_pe_count_is_rejected_before_allocating() {
        let mut tr = base().build_unchecked();
        tr.pe_count = u32::MAX;
        assert_eq!(validate(&tr), Err(vec![ValidationError::PeCountTooLarge(u32::MAX)]));
        let e = ValidationError::PeCountTooLarge(u32::MAX);
        assert!(e.to_string().contains("maximum"));
    }

    #[test]
    fn collects_multiple_violations_in_one_pass() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let c1 = b.add_chare(arr, 1, PeId(1));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        b.end_task(t0, Time(10));
        let t1 = b.begin_task(c1, e, PeId(1), Time(0));
        b.end_task(t1, Time(10));
        b.add_idle(PeId(0), Time(1), Time(5));
        let mut tr = b.build_unchecked();
        // Three independent semantic corruptions.
        tr.tasks[0].end = Time(0);
        tr.tasks[0].begin = Time(5); // negative span
        tr.tasks[1].end = Time(2); // send-free, so only NegativeTaskSpan? no: begin 0 < 2, fine.
        tr.idles[0].end = Time(1); // empty idle
        let errs = validate(&tr).unwrap_err();
        assert!(errs.contains(&ValidationError::NegativeTaskSpan(TaskId(0))), "{errs:?}");
        assert!(errs.contains(&ValidationError::BadIdleSpan(0)), "{errs:?}");
        assert!(errs.len() >= 2);
        // The fast path reports exactly the first of them.
        assert_eq!(validate_fast(&tr), Err(errs[0].clone()));
    }

    #[test]
    fn limit_caps_collection() {
        let mut b = base();
        for i in 0..10 {
            b.add_idle(PeId(0), Time(i), Time(i + 1));
        }
        let mut tr = b.build_unchecked();
        for idle in &mut tr.idles {
            idle.pe = PeId(9);
        }
        let errs = validate_with_limit(&tr, 3).unwrap_err();
        assert_eq!(errs.len(), 3);
        let errs = validate(&tr).unwrap_err();
        assert_eq!(errs.len(), 10);
    }

    #[test]
    fn ref_errors_suppress_semantic_phase() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(5));
        b.end_task(t0, Time(10));
        let mut tr = b.build_unchecked();
        tr.tasks[0].end = Time(0); // would be NegativeTaskSpan...
        tr.tasks[0].chare = crate::ids::ChareId(99); // ...but the ref dangles
        let errs = validate(&tr).unwrap_err();
        assert_eq!(errs, vec![ValidationError::DanglingRef("task.chare", 0)]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::OverlappingTasks(crate::ids::TaskId(1), crate::ids::TaskId(2));
        assert!(e.to_string().contains("overlap"));
        let e = ValidationError::OpenTask(crate::ids::TaskId(3));
        assert!(e.to_string().contains("never closed"));
    }
}
