//! Structural validation of traces.
//!
//! A trace coming out of a simulator or a log parser must satisfy the
//! invariants the ordering algorithm relies on; [`validate`] checks them
//! all in one linear pass per table.

use crate::ids::{EventId, MsgId, TaskId};
use crate::record::EventKind;
use crate::trace::Trace;
use std::fmt;

/// Upper bound on `pe_count` accepted by [`validate`]. Per-PE index
/// structures are allocated eagerly, so an absurd count in a corrupt
/// or hostile trace file would otherwise exhaust memory before any
/// cross-reference check runs. Raise this if you genuinely analyze
/// machines beyond a million processors.
pub const MAX_PES: u32 = 1 << 20;

/// A violated trace invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A task was never closed with `end_task`.
    OpenTask(TaskId),
    /// `pe_count` exceeds [`MAX_PES`].
    PeCountTooLarge(u32),
    /// A record's id does not match its table position.
    IdMismatch(&'static str, usize),
    /// A record references an out-of-range id.
    DanglingRef(&'static str, usize),
    /// A task ends before it begins.
    NegativeTaskSpan(TaskId),
    /// An event's timestamp lies outside its task's span.
    EventOutsideTask(EventId),
    /// A task's sink event is not at the task's begin time.
    SinkNotAtBegin(TaskId),
    /// A task's send events are not in non-decreasing time order.
    SendsOutOfOrder(TaskId),
    /// A message's endpoints disagree (send event kind, sink backlink,
    /// or timestamps inconsistent).
    InconsistentMessage(MsgId),
    /// Two tasks overlap on the same PE (serial blocks are
    /// uninterruptible, so this cannot happen in a well-formed trace).
    OverlappingTasks(TaskId, TaskId),
    /// An idle span is empty/inverted or on an out-of-range PE.
    BadIdleSpan(usize),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::OpenTask(t) => write!(f, "task {t} was never closed"),
            ValidationError::PeCountTooLarge(n) => {
                write!(f, "pe_count {n} exceeds the supported maximum of {MAX_PES}")
            }
            ValidationError::IdMismatch(table, i) => {
                write!(f, "{table}[{i}] has an id different from its position")
            }
            ValidationError::DanglingRef(what, i) => {
                write!(f, "dangling {what} reference at index {i}")
            }
            ValidationError::NegativeTaskSpan(t) => write!(f, "task {t} ends before it begins"),
            ValidationError::EventOutsideTask(e) => {
                write!(f, "event {e} is outside its task's time span")
            }
            ValidationError::SinkNotAtBegin(t) => {
                write!(f, "task {t} has a sink event not at its begin time")
            }
            ValidationError::SendsOutOfOrder(t) => {
                write!(f, "task {t} has send events out of time order")
            }
            ValidationError::InconsistentMessage(m) => {
                write!(f, "message {m} has inconsistent endpoints")
            }
            ValidationError::OverlappingTasks(a, b) => {
                write!(f, "tasks {a} and {b} overlap on the same PE")
            }
            ValidationError::BadIdleSpan(i) => write!(f, "idle span {i} is malformed"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks every structural invariant of `trace`. Returns the first
/// violation found.
pub fn validate(trace: &Trace) -> Result<(), ValidationError> {
    use ValidationError as E;

    // Checked first: everything below allocates per-PE structures.
    if trace.pe_count > MAX_PES {
        return Err(E::PeCountTooLarge(trace.pe_count));
    }

    for (i, a) in trace.arrays.iter().enumerate() {
        if a.id.index() != i {
            return Err(E::IdMismatch("arrays", i));
        }
    }
    for (i, c) in trace.chares.iter().enumerate() {
        if c.id.index() != i {
            return Err(E::IdMismatch("chares", i));
        }
        if c.array.index() >= trace.arrays.len() {
            return Err(E::DanglingRef("chare.array", i));
        }
        if c.home_pe.0 >= trace.pe_count {
            return Err(E::DanglingRef("chare.home_pe", i));
        }
        if c.kind != trace.array(c.array).kind {
            return Err(E::IdMismatch("chares.kind", i));
        }
    }
    for (i, e) in trace.entries.iter().enumerate() {
        if e.id.index() != i {
            return Err(E::IdMismatch("entries", i));
        }
    }

    for (i, t) in trace.tasks.iter().enumerate() {
        if t.id.index() != i {
            return Err(E::IdMismatch("tasks", i));
        }
        if t.chare.index() >= trace.chares.len() {
            return Err(E::DanglingRef("task.chare", i));
        }
        if t.entry.index() >= trace.entries.len() {
            return Err(E::DanglingRef("task.entry", i));
        }
        if t.pe.0 >= trace.pe_count {
            return Err(E::DanglingRef("task.pe", i));
        }
        if t.end < t.begin {
            return Err(E::NegativeTaskSpan(t.id));
        }
        if let Some(sink) = t.sink {
            if sink.index() >= trace.events.len() {
                return Err(E::DanglingRef("task.sink", i));
            }
            let ev = trace.event(sink);
            if !ev.is_sink() || ev.task != t.id {
                return Err(E::DanglingRef("task.sink", i));
            }
            if ev.time != t.begin {
                return Err(E::SinkNotAtBegin(t.id));
            }
        }
        let mut last = t.begin;
        for &s in &t.sends {
            if s.index() >= trace.events.len() {
                return Err(E::DanglingRef("task.sends", i));
            }
            let ev = trace.event(s);
            if !ev.is_source() || ev.task != t.id {
                return Err(E::DanglingRef("task.sends", i));
            }
            if ev.time < last {
                return Err(E::SendsOutOfOrder(t.id));
            }
            last = ev.time;
        }
    }

    for (i, ev) in trace.events.iter().enumerate() {
        if ev.id.index() != i {
            return Err(E::IdMismatch("events", i));
        }
        if ev.task.index() >= trace.tasks.len() {
            return Err(E::DanglingRef("event.task", i));
        }
        let t = trace.task(ev.task);
        if ev.time < t.begin || ev.time > t.end {
            return Err(E::EventOutsideTask(ev.id));
        }
        match ev.kind {
            EventKind::Recv { msg: Some(m) } | EventKind::Send { msg: m } => {
                if m.index() >= trace.msgs.len() {
                    return Err(E::DanglingRef("event.msg", i));
                }
            }
            EventKind::Recv { msg: None } => {}
        }
    }

    for (i, m) in trace.msgs.iter().enumerate() {
        if m.id.index() != i {
            return Err(E::IdMismatch("msgs", i));
        }
        if m.send_event.index() >= trace.events.len() {
            return Err(E::DanglingRef("msg.send_event", i));
        }
        let sev = trace.event(m.send_event);
        if !sev.is_source() || sev.time != m.send_time {
            return Err(E::InconsistentMessage(m.id));
        }
        if m.dst_chare.index() >= trace.chares.len() {
            return Err(E::DanglingRef("msg.dst_chare", i));
        }
        if m.dst_entry.index() >= trace.entries.len() {
            return Err(E::DanglingRef("msg.dst_entry", i));
        }
        match (m.recv_task, m.recv_time) {
            (Some(rt), Some(rtime)) => {
                if rt.index() >= trace.tasks.len() {
                    return Err(E::DanglingRef("msg.recv_task", i));
                }
                let task = trace.task(rt);
                if task.begin != rtime {
                    return Err(E::InconsistentMessage(m.id));
                }
                let sink = task.sink.ok_or(E::InconsistentMessage(m.id))?;
                if trace.event(sink).kind != (EventKind::Recv { msg: Some(m.id) }) {
                    return Err(E::InconsistentMessage(m.id));
                }
            }
            (None, None) => {}
            _ => return Err(E::InconsistentMessage(m.id)),
        }
    }

    // Serial blocks on one PE may not overlap (touching endpoints allowed).
    let ix = trace.index();
    for list in &ix.tasks_by_pe {
        for pair in list.windows(2) {
            let (a, b) = (trace.task(pair[0]), trace.task(pair[1]));
            if b.begin < a.end {
                return Err(E::OverlappingTasks(a.id, b.id));
            }
        }
    }

    for (i, idle) in trace.idles.iter().enumerate() {
        if idle.end <= idle.begin || idle.pe.0 >= trace.pe_count {
            return Err(E::BadIdleSpan(i));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{Kind, PeId};
    use crate::time::Time;

    fn base() -> TraceBuilder {
        TraceBuilder::new(2)
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate(&base().build_unchecked()), Ok(()));
    }

    #[test]
    fn detects_overlapping_tasks_on_pe() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let c1 = b.add_chare(arr, 1, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        b.end_task(t0, Time(10));
        let t1 = b.begin_task(c1, e, PeId(0), Time(5));
        b.end_task(t1, Time(15));
        let tr = b.build_unchecked();
        assert!(matches!(validate(&tr), Err(ValidationError::OverlappingTasks(_, _))));
    }

    #[test]
    fn touching_tasks_are_fine() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        b.end_task(t0, Time(10));
        let t1 = b.begin_task(c0, e, PeId(0), Time(10));
        b.end_task(t1, Time(20));
        assert_eq!(validate(&b.build_unchecked()), Ok(()));
    }

    #[test]
    fn detects_event_outside_task() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let _m = b.record_send(t0, Time(50), c0, e);
        b.end_task(t0, Time(10)); // send at t=50 now outside [0,10]
        let tr = b.build_unchecked();
        assert!(matches!(validate(&tr), Err(ValidationError::EventOutsideTask(_))));
    }

    #[test]
    fn detects_pe_out_of_range() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(7), Time(0));
        b.end_task(t0, Time(1));
        let tr = b.build_unchecked();
        assert!(matches!(validate(&tr), Err(ValidationError::DanglingRef("task.pe", _))));
    }

    #[test]
    fn detects_tampered_message() {
        let mut b = base();
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let c1 = b.add_chare(arr, 1, PeId(1));
        let e = b.add_entry("m", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let m = b.record_send(t0, Time(1), c1, e);
        b.end_task(t0, Time(2));
        let t1 = b.begin_task_from(c1, e, PeId(1), Time(4), m);
        b.end_task(t1, Time(5));
        let mut tr = b.build_unchecked();
        tr.msgs[m.index()].recv_time = Some(Time(3)); // no longer the task begin
        assert!(matches!(validate(&tr), Err(ValidationError::InconsistentMessage(_))));
    }

    #[test]
    fn detects_malformed_idle() {
        let mut b = base();
        b.add_idle(PeId(0), Time(1), Time(5));
        let mut tr = b.build_unchecked();
        tr.idles[0].pe = PeId(9);
        assert_eq!(validate(&tr), Err(ValidationError::BadIdleSpan(0)));
    }

    #[test]
    fn absurd_pe_count_is_rejected_before_allocating() {
        let mut tr = base().build_unchecked();
        tr.pe_count = u32::MAX;
        assert_eq!(validate(&tr), Err(ValidationError::PeCountTooLarge(u32::MAX)));
        let e = ValidationError::PeCountTooLarge(u32::MAX);
        assert!(e.to_string().contains("maximum"));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::OverlappingTasks(crate::ids::TaskId(1), crate::ids::TaskId(2));
        assert!(e.to_string().contains("overlap"));
        let e = ValidationError::OpenTask(crate::ids::TaskId(3));
        assert!(e.to_string().contains("never closed"));
    }
}
