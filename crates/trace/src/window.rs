//! Time-windowing: extracting the slice of a trace inside an interval.
//!
//! Long production traces are analyzed a window at a time. [`window`]
//! keeps every task fully contained in `[from, to]`, remaps all ids
//! densely, clips idle spans, and degrades messages whose other
//! endpoint fell outside the window into the corresponding "untraced"
//! form (an unmatched send, or a receive with no recorded trigger) —
//! the same shapes the analysis already tolerates for lost
//! dependencies.

use crate::ids::{EventId, MsgId, TaskId};
use crate::record::{EventKind, EventRec, IdleRec, MsgRec, TaskRec};
use crate::time::Time;
use crate::trace::Trace;

/// Returns the sub-trace of tasks fully contained in `[from, to]`.
/// Metadata tables (arrays, chares, entries, sigs) are preserved
/// unchanged so ids in the window remain meaningful.
pub fn window(trace: &Trace, from: Time, to: Time) -> Trace {
    assert!(from <= to, "empty window");
    const DROP: u32 = u32::MAX;

    // Select tasks and build dense remaps.
    let mut task_map = vec![DROP; trace.tasks.len()];
    let mut kept_tasks = Vec::new();
    for t in &trace.tasks {
        if t.begin >= from && t.end <= to {
            task_map[t.id.index()] = kept_tasks.len() as u32;
            kept_tasks.push(t.id);
        }
    }
    let mut event_map = vec![DROP; trace.events.len()];
    let mut kept_events = Vec::new();
    for ev in &trace.events {
        if task_map[ev.task.index()] != DROP {
            event_map[ev.id.index()] = kept_events.len() as u32;
            kept_events.push(ev.id);
        }
    }
    // A message survives iff its send event survives.
    let mut msg_map = vec![DROP; trace.msgs.len()];
    let mut kept_msgs = Vec::new();
    for m in &trace.msgs {
        if event_map[m.send_event.index()] != DROP {
            msg_map[m.id.index()] = kept_msgs.len() as u32;
            kept_msgs.push(m.id);
        }
    }

    let tasks = kept_tasks
        .iter()
        .map(|&old| {
            let t = trace.task(old);
            TaskRec {
                id: TaskId(task_map[old.index()]),
                chare: t.chare,
                entry: t.entry,
                pe: t.pe,
                begin: t.begin,
                end: t.end,
                sink: t.sink.map(|s| EventId(event_map[s.index()])),
                sends: t.sends.iter().map(|s| EventId(event_map[s.index()])).collect(),
            }
        })
        .collect();

    let events = kept_events
        .iter()
        .map(|&old| {
            let ev = trace.event(old);
            let kind = match ev.kind {
                EventKind::Send { msg } => EventKind::Send { msg: MsgId(msg_map[msg.index()]) },
                // A receive whose sender fell outside the window becomes
                // a spontaneous trigger.
                EventKind::Recv { msg } => EventKind::Recv {
                    msg: msg
                        .filter(|m| msg_map[m.index()] != DROP)
                        .map(|m| MsgId(msg_map[m.index()])),
                },
            };
            EventRec {
                id: EventId(event_map[old.index()]),
                task: TaskId(task_map[ev.task.index()]),
                time: ev.time,
                kind,
            }
        })
        .collect();

    let msgs = kept_msgs
        .iter()
        .map(|&old| {
            let m = trace.msg(old);
            // Degrade to unmatched if the receiver fell outside.
            let recv_kept = m.recv_task.filter(|rt| task_map[rt.index()] != DROP);
            MsgRec {
                id: MsgId(msg_map[old.index()]),
                send_event: EventId(event_map[m.send_event.index()]),
                recv_task: recv_kept.map(|rt| TaskId(task_map[rt.index()])),
                dst_chare: m.dst_chare,
                dst_entry: m.dst_entry,
                send_time: m.send_time,
                recv_time: recv_kept.map(|rt| trace.task(rt).begin),
            }
        })
        .collect();

    let idles = trace
        .idles
        .iter()
        .filter_map(|i| {
            let begin = i.begin.max(from);
            let end = i.end.min(to);
            (end > begin).then_some(IdleRec { pe: i.pe, begin, end })
        })
        .collect();

    Trace {
        pe_count: trace.pe_count,
        arrays: trace.arrays.clone(),
        chares: trace.chares.clone(),
        entries: trace.entries.clone(),
        sigs: trace.sigs.clone(),
        tasks,
        events,
        msgs,
        idles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::{Kind, PeId};
    use crate::validate::validate;

    /// chain t0 --m0--> t1 --m1--> t2 at times [0,10], [20,30], [40,50].
    fn chain() -> Trace {
        let mut b = TraceBuilder::new(1);
        let arr = b.add_array("a", Kind::Application);
        let c0 = b.add_chare(arr, 0, PeId(0));
        let e = b.add_entry("go", None);
        let t0 = b.begin_task(c0, e, PeId(0), Time(0));
        let m0 = b.record_send(t0, Time(5), c0, e);
        b.end_task(t0, Time(10));
        b.add_idle(PeId(0), Time(10), Time(20));
        let t1 = b.begin_task_from(c0, e, PeId(0), Time(20), m0);
        let m1 = b.record_send(t1, Time(25), c0, e);
        b.end_task(t1, Time(30));
        b.add_idle(PeId(0), Time(30), Time(40));
        let t2 = b.begin_task_from(c0, e, PeId(0), Time(40), m1);
        b.end_task(t2, Time(50));
        b.build().unwrap()
    }

    #[test]
    fn full_window_is_identity_up_to_ids() {
        let tr = chain();
        let w = window(&tr, Time(0), Time(100));
        assert_eq!(w, tr);
    }

    #[test]
    fn middle_window_degrades_boundary_messages() {
        let tr = chain();
        let w = window(&tr, Time(15), Time(35));
        validate(&w).expect("windowed trace is valid");
        assert_eq!(w.tasks.len(), 1, "only t1 fits");
        let t = &w.tasks[0];
        // Its trigger's sender fell outside: spontaneous receive.
        let sink = t.sink.expect("sink event kept");
        assert_eq!(w.event(sink).kind, EventKind::Recv { msg: None });
        // Its outgoing message's receiver fell outside: unmatched send.
        assert_eq!(w.msgs.len(), 1);
        assert_eq!(w.msgs[0].recv_task, None);
        assert_eq!(w.msgs[0].recv_time, None);
    }

    #[test]
    fn idle_spans_are_clipped() {
        let tr = chain();
        let w = window(&tr, Time(15), Time(35));
        assert_eq!(w.idles.len(), 2);
        assert_eq!((w.idles[0].begin, w.idles[0].end), (Time(15), Time(20)));
        assert_eq!((w.idles[1].begin, w.idles[1].end), (Time(30), Time(35)));
    }

    #[test]
    fn empty_window_yields_empty_trace_with_metadata() {
        let tr = chain();
        let w = window(&tr, Time(11), Time(19));
        validate(&w).expect("valid");
        assert!(w.tasks.is_empty() && w.events.is_empty() && w.msgs.is_empty());
        assert_eq!(w.chares.len(), tr.chares.len());
    }

    #[test]
    fn window_of_window_composes() {
        let tr = chain();
        let once = window(&tr, Time(10), Time(60));
        let twice = window(&once, Time(15), Time(35));
        let direct = window(&tr, Time(15), Time(35));
        assert_eq!(twice, direct, "windowing composes");
    }

    #[test]
    fn point_window_is_allowed_and_empty() {
        let tr = chain();
        let w = window(&tr, Time(25), Time(25));
        // A zero-width window holds no complete task.
        assert!(w.tasks.is_empty());
        validate(&w).unwrap();
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn inverted_window_panics() {
        let tr = chain();
        let _ = window(&tr, Time(10), Time(5));
    }
}
