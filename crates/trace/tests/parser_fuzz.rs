//! Fuzzing the text-log parser: arbitrary input must never panic —
//! every malformed document is a clean `ParseError`.

use lsr_trace::logfmt::from_log_str;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totally arbitrary bytes-as-text.
    #[test]
    fn arbitrary_text_never_panics(s in "\\PC*") {
        let _ = from_log_str(&s);
    }

    /// Adversarial inputs that look like the format: a valid header
    /// followed by lines assembled from real tags and random fields.
    #[test]
    fn tag_shaped_garbage_never_panics(
        lines in proptest::collection::vec(
            (
                prop_oneof![
                    Just("PES"), Just("ARRAY"), Just("CHARE"), Just("ENTRY"),
                    Just("TASK"), Just("RECV"), Just("SEND"), Just("MSG"),
                    Just("IDLE"), Just("JUNK"),
                ],
                proptest::collection::vec(any::<u32>(), 0..8),
            ),
            0..40,
        )
    ) {
        let mut doc = String::from("LSRTRACE 1\n");
        for (tag, fields) in lines {
            doc.push_str(tag);
            for f in fields {
                doc.push(' ');
                // Mix numerals with the occasional placeholder.
                if f % 7 == 0 {
                    doc.push('-');
                } else {
                    doc.push_str(&f.to_string());
                }
            }
            doc.push('\n');
        }
        let _ = from_log_str(&doc);
    }

    /// Mutating one byte of a VALID document parses or fails cleanly —
    /// and if it parses, it still validates (the parser re-validates).
    #[test]
    fn single_byte_corruption_is_handled(pos in 0usize..4096, byte in any::<u8>()) {
        // A small fixed valid trace.
        let mut b = lsr_trace::TraceBuilder::new(2);
        let arr = b.add_array("a", lsr_trace::Kind::Application);
        let c0 = b.add_chare(arr, 0, lsr_trace::PeId(0));
        let c1 = b.add_chare(arr, 1, lsr_trace::PeId(1));
        let e = b.add_entry("go", Some(1));
        let t0 = b.begin_task(c0, e, lsr_trace::PeId(0), lsr_trace::Time(0));
        let m = b.record_send(t0, lsr_trace::Time(1), c1, e);
        b.end_task(t0, lsr_trace::Time(2));
        let t1 = b.begin_task_from(c1, e, lsr_trace::PeId(1), lsr_trace::Time(5), m);
        b.end_task(t1, lsr_trace::Time(6));
        let text = lsr_trace::logfmt::to_log_string(&b.build().unwrap());
        let mut bytes = text.into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(trace) = from_log_str(&s) {
                prop_assert!(lsr_trace::validate(&trace).is_ok(),
                    "anything the parser accepts must be valid");
            }
        }
    }
}
