//! Fuzzing the text-log parser: arbitrary input must never panic —
//! every malformed document is a clean `ParseError` (strict) or a
//! repaired trace plus `I` diagnostics (salvage).

use lsr_trace::logfmt::{from_log_str, read_log_salvage, read_log_unchecked};
use lsr_trace::{EventKind, Trace};
use proptest::prelude::*;

/// Every id a salvaged trace hands out must resolve: salvage promises
/// the result is referentially intact *by construction*, whatever the
/// input looked like.
fn assert_referentially_intact(tr: &Trace) {
    let (na, nc, ne, nt, nev, nm) = (
        tr.arrays.len(),
        tr.chares.len(),
        tr.entries.len(),
        tr.tasks.len(),
        tr.events.len(),
        tr.msgs.len(),
    );
    for (i, a) in tr.arrays.iter().enumerate() {
        assert_eq!(a.id.0 as usize, i, "array ids dense");
    }
    for (i, c) in tr.chares.iter().enumerate() {
        assert_eq!(c.id.0 as usize, i, "chare ids dense");
        assert!((c.array.0 as usize) < na, "chare -> array");
        assert!((c.home_pe.0) < tr.pe_count, "chare home pe in range");
    }
    for (i, e) in tr.entries.iter().enumerate() {
        assert_eq!(e.id.0 as usize, i, "entry ids dense");
    }
    for (i, t) in tr.tasks.iter().enumerate() {
        assert_eq!(t.id.0 as usize, i, "task ids dense");
        assert!((t.chare.0 as usize) < nc, "task -> chare");
        assert!((t.entry.0 as usize) < ne, "task -> entry");
        assert!(t.pe.0 < tr.pe_count, "task pe in range");
        if let Some(s) = t.sink {
            assert!((s.0 as usize) < nev, "task sink -> event");
        }
        for s in &t.sends {
            assert!((s.0 as usize) < nev, "task sends -> event");
        }
    }
    for (i, ev) in tr.events.iter().enumerate() {
        assert_eq!(ev.id.0 as usize, i, "event ids dense");
        assert!((ev.task.0 as usize) < nt, "event -> task");
        match ev.kind {
            EventKind::Send { msg } => assert!((msg.0 as usize) < nm, "send -> msg"),
            EventKind::Recv { msg } => {
                if let Some(m) = msg {
                    assert!((m.0 as usize) < nm, "recv -> msg");
                }
            }
        }
    }
    for (i, m) in tr.msgs.iter().enumerate() {
        assert_eq!(m.id.0 as usize, i, "msg ids dense");
        assert!((m.send_event.0 as usize) < nev, "msg -> send event");
        assert!((m.dst_chare.0 as usize) < nc, "msg -> dst chare");
        assert!((m.dst_entry.0 as usize) < ne, "msg -> dst entry");
        if let Some(t) = m.recv_task {
            assert!((t.0 as usize) < nt, "msg -> recv task");
        }
    }
    for idle in &tr.idles {
        assert!(idle.pe.0 < tr.pe_count, "idle pe in range");
    }
}

/// A small fixed valid trace used by several properties below.
fn sample_trace() -> Trace {
    let mut b = lsr_trace::TraceBuilder::new(2);
    let arr = b.add_array("a", lsr_trace::Kind::Application);
    let c0 = b.add_chare(arr, 0, lsr_trace::PeId(0));
    let c1 = b.add_chare(arr, 1, lsr_trace::PeId(1));
    let e = b.add_entry("go", Some(1));
    let t0 = b.begin_task(c0, e, lsr_trace::PeId(0), lsr_trace::Time(0));
    let m = b.record_send(t0, lsr_trace::Time(1), c1, e);
    b.end_task(t0, lsr_trace::Time(2));
    let t1 = b.begin_task_from(c1, e, lsr_trace::PeId(1), lsr_trace::Time(5), m);
    b.end_task(t1, lsr_trace::Time(6));
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totally arbitrary bytes-as-text.
    #[test]
    fn arbitrary_text_never_panics(s in "\\PC*") {
        let _ = from_log_str(&s);
    }

    /// Completely arbitrary BYTES — not even valid UTF-8. Neither the
    /// strict reader nor salvage mode may panic on any input.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = read_log_unchecked(&bytes[..]);
        let _ = read_log_salvage(&bytes[..]);
    }

    /// Arbitrary bytes appended after a valid header: the likeliest
    /// corruption shape (truncated or overwritten tail).
    #[test]
    fn corrupted_tail_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut doc = b"LSRTRACE 1\n".to_vec();
        doc.extend_from_slice(&bytes);
        let _ = read_log_unchecked(&doc[..]);
        if let Ok((tr, _)) = read_log_salvage(&doc[..]) {
            assert_referentially_intact(&tr);
        }
    }

    /// Salvage over tag-shaped garbage must produce a trace whose every
    /// cross-reference resolves and whose ids are dense — the salvage
    /// contract, checked record by record.
    #[test]
    fn salvage_output_is_referentially_intact(
        lines in proptest::collection::vec(
            (
                prop_oneof![
                    Just("PES"), Just("ARRAY"), Just("CHARE"), Just("ENTRY"),
                    Just("TASK"), Just("RECV"), Just("SEND"), Just("MSG"),
                    Just("IDLE"), Just("JUNK"),
                ],
                proptest::collection::vec(any::<u32>(), 0..8),
            ),
            0..40,
        )
    ) {
        let mut doc = String::from("LSRTRACE 1\n");
        for (tag, fields) in lines {
            doc.push_str(tag);
            for f in fields {
                doc.push(' ');
                if f % 7 == 0 {
                    doc.push('-');
                } else {
                    doc.push_str(&f.to_string());
                }
            }
            doc.push('\n');
        }
        let (tr, _rep) = read_log_salvage(doc.as_bytes())
            .expect("salvage never fails on headered text input");
        assert_referentially_intact(&tr);
    }

    /// Shuffling the record lines of a valid document parses to the
    /// identical trace: ingestion is two-phase, so record order carries
    /// no information.
    #[test]
    fn record_order_never_matters(
        shuffled in Just(
            lsr_trace::logfmt::to_log_string(&sample_trace())
                .lines()
                .skip(1)
                .map(str::to_owned)
                .collect::<Vec<_>>()
        ).prop_shuffle()
    ) {
        let doc = format!("LSRTRACE 1\n{}\n", shuffled.join("\n"));
        let tr = from_log_str(&doc).expect("valid records in any order");
        prop_assert_eq!(tr, sample_trace());
    }

    /// Adversarial inputs that look like the format: a valid header
    /// followed by lines assembled from real tags and random fields.
    #[test]
    fn tag_shaped_garbage_never_panics(
        lines in proptest::collection::vec(
            (
                prop_oneof![
                    Just("PES"), Just("ARRAY"), Just("CHARE"), Just("ENTRY"),
                    Just("TASK"), Just("RECV"), Just("SEND"), Just("MSG"),
                    Just("IDLE"), Just("JUNK"),
                ],
                proptest::collection::vec(any::<u32>(), 0..8),
            ),
            0..40,
        )
    ) {
        let mut doc = String::from("LSRTRACE 1\n");
        for (tag, fields) in lines {
            doc.push_str(tag);
            for f in fields {
                doc.push(' ');
                // Mix numerals with the occasional placeholder.
                if f % 7 == 0 {
                    doc.push('-');
                } else {
                    doc.push_str(&f.to_string());
                }
            }
            doc.push('\n');
        }
        let _ = from_log_str(&doc);
    }

    /// Mutating one byte of a VALID document parses or fails cleanly —
    /// and if it parses, it still validates (the parser re-validates).
    #[test]
    fn single_byte_corruption_is_handled(pos in 0usize..4096, byte in any::<u8>()) {
        // A small fixed valid trace.
        let mut b = lsr_trace::TraceBuilder::new(2);
        let arr = b.add_array("a", lsr_trace::Kind::Application);
        let c0 = b.add_chare(arr, 0, lsr_trace::PeId(0));
        let c1 = b.add_chare(arr, 1, lsr_trace::PeId(1));
        let e = b.add_entry("go", Some(1));
        let t0 = b.begin_task(c0, e, lsr_trace::PeId(0), lsr_trace::Time(0));
        let m = b.record_send(t0, lsr_trace::Time(1), c1, e);
        b.end_task(t0, lsr_trace::Time(2));
        let t1 = b.begin_task_from(c1, e, lsr_trace::PeId(1), lsr_trace::Time(5), m);
        b.end_task(t1, lsr_trace::Time(6));
        let text = lsr_trace::logfmt::to_log_string(&b.build().unwrap());
        let mut bytes = text.into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(trace) = from_log_str(&s) {
                prop_assert!(lsr_trace::validate(&trace).is_ok(),
                    "anything the parser accepts must be valid");
            }
        }
    }
}
