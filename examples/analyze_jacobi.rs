//! Metric-driven performance analysis of a Jacobi 2D run with an
//! injected straggler — the paper's §4 workflow: find idling, explain
//! it with differential duration, confirm with imbalance.
//!
//! ```sh
//! cargo run --release --example analyze_jacobi
//! ```

use lsr::apps::{jacobi2d, JacobiParams};
use lsr::core::{extract, Config};
use lsr::metrics::{idle_experienced, per_pe_totals, DifferentialDuration, Imbalance};
use lsr::render::logical_by_metric;
use lsr::trace::Dur;

fn main() {
    let params = JacobiParams::fig15(); // 16 chares, one 200 µs straggler
    let trace = jacobi2d(&params);
    let ls = extract(&trace, &Config::charm());
    ls.verify(&trace).expect("invariants");

    // Step 1: where is the machine idling?
    let idle = idle_experienced(&trace);
    println!("== idle experienced per PE ==");
    for (pe, d) in per_pe_totals(&trace, &idle).iter().enumerate() {
        println!("  pe{pe}: {d}");
    }

    // Step 2: which computation is out of line with its peers?
    let dd = DifferentialDuration::compute(&trace, &ls);
    let (event, excess) = dd.max().expect("events exist");
    let chare = trace.chare(trace.event_chare(event));
    println!("\n== differential duration ==");
    println!(
        "worst event: {event} at step {} on chare {}[{}], {excess} over its peers",
        ls.global_step(event),
        trace.array(chare.array).name,
        chare.index
    );
    println!("outliers above 20us:");
    for (e, d) in dd.outliers(Dur::from_micros(20)).into_iter().take(5) {
        println!("  {e}: {d} (chare index {})", trace.chare(trace.event_chare(e)).index);
    }

    // Step 3: confirm the load imbalance at phase level.
    let imb = Imbalance::compute(&trace, &ls);
    let (phase, worst) =
        imb.per_phase.iter().enumerate().max_by_key(|&(_, d)| d).expect("phases exist");
    println!("\n== imbalance ==");
    println!("most imbalanced phase: {phase} ({worst} max-min load)");
    println!("overall PE imbalance: {}", imb.overall());

    // Step 4: see it in logical time.
    let per_event: Vec<f64> = dd.per_event.iter().map(|d| d.nanos() as f64).collect();
    println!("\n== logical view, shaded by differential duration ==");
    println!("{}", logical_by_metric(&trace, &ls, &per_event));
}
