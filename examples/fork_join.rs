//! Fork/join recursion through the pipeline: run the divide-and-conquer
//! proxy, recover its (single-phase) logical structure, and read the
//! fork wave and join wave off the step axis — then ask the critical
//! path which chain actually bounded the run.
//!
//! ```sh
//! cargo run --release --example fork_join
//! ```

use lsr::apps::{divcon_charm, DivConParams};
use lsr::core::{extract, Config};
use lsr::metrics::CriticalPath;
use lsr::render::logical_by_phase;

fn main() {
    let params = DivConParams::small();
    let trace = divcon_charm(&params);
    let ls = extract(&trace, &Config::charm());
    ls.verify(&trace).expect("invariants");

    println!(
        "depth {}: {} node chares, {} tasks, {} messages",
        params.depth,
        trace.chares.len() - trace.pe_count as usize, // minus runtime mgrs
        trace.tasks.len(),
        trace.msgs.len()
    );
    println!("{}", ls.summary(&trace));
    println!("{}", logical_by_phase(&trace, &ls));

    // The fork wave: step of each level's first split send.
    println!("fork wave (first send per tree level):");
    for level in 0..=params.depth {
        let first_node = (1u32 << level) - 1;
        let last_node = (1u32 << (level + 1)) - 2;
        let step = trace
            .tasks
            .iter()
            .filter(|t| {
                let i = trace.chare(t.chare).index;
                !trace.chare(t.chare).kind.is_runtime()
                    && i >= first_node
                    && i <= last_node
                    && !t.sends.is_empty()
            })
            .map(|t| ls.global_step(t.sends[0]))
            .min();
        println!("  level {level}: step {step:?}");
    }

    let cp = CriticalPath::compute(&trace);
    println!(
        "\ncritical path: {} tasks, {} work over {} makespan (ratio {:.2})",
        cp.tasks.len(),
        cp.work,
        lsr::trace::Dur(cp.makespan.nanos()),
        cp.work_ratio()
    );
    // In a balanced tree the path goes root → one leaf → back up:
    // 2*depth + 1 tasks is the dependency-length lower bound.
    assert!(cp.tasks.len() as u32 > 2 * params.depth);
    println!("path spans the fork wave down and the join wave back up, as expected");
}
