//! Fuzz corpus: generate a small seeded scenario sweep, run every
//! trace through the differential oracle stack, and print a per-motif
//! census of what the compositions exercised.
//!
//! ```sh
//! cargo run --release --example fuzz_corpus
//! ```

use lsr::fuzz::{run_fuzz, FuzzParams, Motif};
use lsr::obs::Recorder;

fn main() {
    let rec = Recorder::enabled();
    let params = FuzzParams { seed: 1, count: 12, ..FuzzParams::default() };
    let outcomes = run_fuzz(&params, &rec);

    let mut by_motif = vec![0u32; Motif::ALL.len()];
    let mut failures = 0usize;
    for o in &outcomes {
        println!(
            "scenario {:>2} [{}x{} grid, {} pe, {} round(s)] {:<24} {:>5} tasks {:>5} msgs on {:<5} -> {}",
            o.scenario.id,
            o.scenario.x,
            o.scenario.y,
            o.scenario.pes,
            o.scenario.rounds,
            o.scenario.motifs.iter().map(|m| m.name()).collect::<Vec<_>>().join("+"),
            o.tasks,
            o.msgs,
            o.backend.name(),
            match &o.failure {
                None => "ok".to_string(),
                Some(f) => f.to_string(),
            },
        );
        for m in &o.scenario.motifs {
            by_motif[Motif::ALL.iter().position(|x| x == m).unwrap()] += 1;
        }
        failures += usize::from(o.failure.is_some());
    }

    println!("\nmotif census (scenario x backend occurrences):");
    for (m, n) in Motif::ALL.iter().zip(&by_motif) {
        println!("  {:<10} {n}", m.name());
    }
    for (name, value) in rec.counters() {
        if name.starts_with("fuzz.") {
            println!("  {name} = {value}");
        }
    }
    assert_eq!(failures, 0, "the seeded corpus must pass the oracle stack");
    println!("\nall {} trace(s) passed the 4-rung differential oracle", outcomes.len());
}
