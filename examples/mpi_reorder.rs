//! The message-passing side (paper §3.2.1, Figs. 9–10): a small merge
//! tree whose data-dependent imbalance scrambles receive order across
//! levels. The baseline stepping spreads same-level receives over many
//! steps; reordering realigns each level.
//!
//! ```sh
//! cargo run --release --example mpi_reorder
//! ```

use lsr::apps::{mergetree_mpi, MergeTreeParams};
use lsr::core::{extract, Config, LogicalStructure, OrderingPolicy};
use lsr::render::logical_by_phase;
use lsr::trace::{EventKind, Trace};

/// Distinct global steps taken by the level-`l` receives.
fn level_steps(trace: &Trace, ls: &LogicalStructure, level: u32) -> Vec<u64> {
    let step = 1u32 << level;
    let mut steps: Vec<u64> = trace
        .tasks
        .iter()
        .filter_map(|t| {
            let sink = t.sink?;
            let r = trace.chare(t.chare).index;
            if !r.is_multiple_of(2 * step) {
                return None;
            }
            match trace.event(sink).kind {
                EventKind::Recv { msg: Some(m) } => {
                    let src = trace.event(trace.msg(m).send_event).task;
                    (trace.chare(trace.task(src).chare).index == r + step)
                        .then(|| ls.global_step(sink))
                }
                _ => None,
            }
        })
        .collect();
    steps.sort_unstable();
    steps.dedup();
    steps
}

fn main() {
    let params = MergeTreeParams { ranks: 16, ..MergeTreeParams::small() };
    let trace = mergetree_mpi(&params);

    // The per-process control-order assumption is exactly what breaks
    // on this workload (§3.4), so both configurations drop it.
    let baseline = extract(
        &trace,
        &Config::mpi().with_ordering(OrderingPolicy::PhysicalTime).with_process_order(false),
    );
    let reordered = extract(&trace, &Config::mpi().with_process_order(false));
    baseline.verify(&trace).expect("invariants");
    reordered.verify(&trace).expect("invariants");

    println!("== baseline (recorded receive order) ==");
    println!("{}", logical_by_phase(&trace, &baseline));
    println!("== reordered (idealized forward replay) ==");
    println!("{}", logical_by_phase(&trace, &reordered));

    println!("level | steps taken (baseline)      | steps taken (reordered)");
    let mut total_b = 0;
    let mut total_r = 0;
    for level in 0..4 {
        let b = level_steps(&trace, &baseline, level);
        let r = level_steps(&trace, &reordered, level);
        total_b += b.len();
        total_r += r.len();
        println!("{level:>5} | {:<27} | {:?}", format!("{b:?}"), r);
    }
    println!("\ntotal distinct steps: baseline={total_b}, reordered={total_r}");
    assert!(total_r <= total_b, "reordering must align levels at least as well");
    println!("=> reordering restored the parallel level structure (paper Fig. 10b)");
}
