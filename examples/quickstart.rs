//! Quickstart: simulate a small Charm++-style program, recover its
//! logical structure, and print both views.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lsr::charm::{Ctx, Placement, RedOp, RedTarget, Sim, SimConfig};
use lsr::core::{extract, Config};
use lsr::render::{logical_by_phase, physical_by_phase};
use lsr::trace::{Dur, EntryId, Time};
use std::cell::Cell;
use std::rc::Rc;

#[derive(Default)]
struct State {
    got: u32,
    iter: u32,
}

fn main() {
    // 8 chares on 2 PEs: a 1D ring halo exchange with a reduction
    // gating each of 2 iterations.
    let n = 8u32;
    let iters = 2;
    let mut sim = Sim::new(SimConfig::new(2));
    let arr = sim.add_array("ring", n, Placement::Block, |_| State::default());
    let elems = sim.elements(arr).to_vec();

    let e_next: Rc<Cell<EntryId>> = Rc::new(Cell::new(EntryId(0)));
    let en = e_next.clone();
    let halo = sim.add_entry("recvHalo", Some(1), move |ctx: &mut Ctx, s: &mut State, _d| {
        s.got += 1;
        if s.got == 2 {
            s.got = 0;
            ctx.compute(Dur::from_micros(25));
            ctx.contribute(1, RedOp::Sum, RedTarget::Broadcast(en.get()));
        }
    });
    let el = elems.clone();
    let next = sim.add_entry("nextIter", Some(2), move |ctx: &mut Ctx, s: &mut State, _d| {
        s.iter += 1;
        if s.iter > iters {
            return;
        }
        let i = ctx.my_index();
        ctx.send(el[((i + n - 1) % n) as usize], halo, vec![]);
        ctx.send(el[((i + 1) % n) as usize], halo, vec![]);
    });
    e_next.set(next);
    for &c in &elems {
        sim.inject(c, next, vec![], Time::ZERO);
    }

    // Run the simulated program and recover the logical structure.
    let trace = sim.run();
    println!("trace: {}", lsr::trace::TraceStats::compute(&trace));

    let ls = extract(&trace, &Config::charm());
    ls.verify(&trace).expect("structure invariants hold");
    println!("\n{}", ls.summary(&trace));
    println!("\nLogical structure (rows = chares, columns = steps):");
    println!("{}", logical_by_phase(&trace, &ls));
    println!("Physical time (same tasks, wall-clock layout):");
    println!("{}", physical_by_phase(&trace, &ls));
}
