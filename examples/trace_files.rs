//! Working with trace files: write a run to the Projections-style text
//! log, read it back, check its §7.1 quality score, and analyze it —
//! the post-mortem workflow a downstream user would follow.
//!
//! ```sh
//! cargo run --release --example trace_files
//! ```

use lsr::apps::{lulesh_charm, LuleshParams};
use lsr::core::{extract, Config};
use lsr::trace::{logfmt, QualityReport, TraceStats};

fn main() {
    // 1. Produce a trace (in reality: collected from a traced run).
    let trace = lulesh_charm(&LuleshParams::fig16_charm());

    // 2. Persist it in the text log format.
    let dir = std::env::temp_dir().join("lsr_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("lulesh.lsrtrace");
    let file = std::fs::File::create(&path).expect("create file");
    logfmt::write_log(&trace, std::io::BufWriter::new(file)).expect("write log");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("wrote {} ({bytes} bytes)", path.display());

    // 3. Read it back, as an analysis tool would.
    let file = std::fs::File::open(&path).expect("open file");
    let loaded = logfmt::read_log(std::io::BufReader::new(file)).expect("parse log");
    assert_eq!(trace, loaded);
    println!("\ntrace statistics:\n{}", TraceStats::compute(&loaded));

    // 4. How complete is the recorded control flow? (§7.1 guidelines)
    let quality = QualityReport::analyze(&loaded);
    println!("\n{quality}");

    // 5. Recover and summarize the logical structure.
    let ls = extract(&loaded, &Config::charm());
    ls.verify(&loaded).expect("invariants");
    println!("\n{}", ls.summary(&loaded));

    std::fs::remove_file(&path).ok();
}
