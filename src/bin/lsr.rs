//! `lsr` — command-line front end for logical-structure recovery.
//!
//! ```text
//! lsr gen <preset> --out trace.lsrtrace     generate a proxy-app trace
//! lsr stats <trace>                          table sizes, utilization
//! lsr quality <trace>                        §7.1 trace-quality report
//! lsr extract <trace> [flags]                phases + steps summary
//! lsr render <trace> [flags]                 ASCII/SVG views
//! lsr metrics <trace> [flags]                idle/differential/imbalance
//! lsr lint <trace> [flags]                   diagnostic passes (lsr-lint)
//! lsr analyze <trace> [flags]                dataflow analyses over the structure (D passes)
//! lsr model <trace> [flags]                  conformance against the static skeleton (M passes)
//! lsr races <trace> [flags]                  message-race analysis (R passes)
//! lsr audit <trace> [flags]                  certificate-check the extraction (A codes)
//! lsr shrink <trace> --code CODE             minimize a diagnostic reproducer (ddmin)
//! lsr critical-path <trace>                  longest dependent chain
//! ```
//!
//! Extraction flags: `--mpi` (message-passing model), `--physical`
//! (no reordering), `--no-infer`, `--no-split`, `--no-sdag`,
//! `--parallel`, `--no-process-order`, `--verify` (re-check the DESIGN
//! §7 invariants after extraction; panics on violation).
//! Render flags: `--view logical|physical`, `--format ascii|svg`,
//! `--metric phase|diff|idle|imbalance`, `--out FILE`.
//!
//! Every subcommand also accepts `--profile` (ASCII span/counter
//! report on stderr) and `--profile-json FILE` (schema-versioned JSON
//! profile, `-` for stdout) — see `docs/observability.md`.

use lsr::core::{try_extract, Config, LogicalStructure, OrderingPolicy};
use lsr::metrics::{
    idle_experienced, per_pe_totals, CriticalPath, DifferentialDuration, Imbalance,
};
use lsr::trace::{logfmt, QualityReport, Trace, TraceStats};
use std::process::ExitCode;

fn main() -> ExitCode {
    // A CLI is routinely piped into `head`/`less`; restore the default
    // SIGPIPE disposition so a closed pipe ends the process quietly
    // instead of panicking mid-print.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `lsr help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        print_help();
        return Ok(ExitCode::SUCCESS);
    };
    let rest = &args[1..];
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            print_help();
            Ok(ExitCode::SUCCESS)
        }
        "gen" => done(cmd_gen(rest)),
        "fuzz" => cmd_fuzz(rest),
        "stats" => done(cmd_stats(rest)),
        "quality" => done(cmd_quality(rest)),
        "extract" => done(cmd_extract(rest)),
        "render" => done(cmd_render(rest)),
        "metrics" => done(cmd_metrics(rest)),
        "report" => done(cmd_report(rest)),
        "diff" => done(cmd_diff(rest)),
        "lint" => cmd_lint(rest),
        "analyze" => cmd_analyze(rest),
        "model" => cmd_model(rest),
        "races" => cmd_races(rest),
        "audit" => cmd_audit(rest),
        "shrink" => done(cmd_shrink(rest)),
        "critical-path" => done(cmd_critical_path(rest)),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn print_help() {
    println!(
        "lsr — logical structure recovery for task-based runtime traces\n\
         (reproduction of Isaacs et al., SC'15)\n\n\
         USAGE: lsr <command> [args]\n\n\
         COMMANDS\n\
         \u{20}  gen <preset> [--out FILE]   generate a proxy-app trace\n\
         \u{20}      presets: jacobi-fig8 jacobi-fig15 lulesh-charm lulesh-mpi\n\
         \u{20}               lassen8 lassen64 lassen-mpi pdes mergetree\n\
         \u{20}               mergetree1024 bt divcon\n\
         \u{20}  fuzz [flags]                seeded motif-composition fuzzing with a\n\
         \u{20}                              differential oracle per generated trace\n\
         \u{20}  stats <trace>               table sizes, span, utilization\n\
         \u{20}  quality <trace>             trace-quality report (paper §7.1)\n\
         \u{20}  extract <trace> [flags]     recover phases + logical steps\n\
         \u{20}  render <trace> [flags]      ASCII/SVG views of the structure\n\
         \u{20}  metrics <trace> [flags]     idle / differential duration / imbalance\n\
         \u{20}  report <trace> [flags]      self-contained HTML analysis report\n\
         \u{20}  diff <a> <b> [flags]        compare two runs' structures\n\
         \u{20}  lint <trace> [flags]        diagnostic passes over trace + structure\n\
         \u{20}  analyze <trace> [flags]     dataflow analyses over the recovered structure\n\
         \u{20}  model <trace> [flags]       check structure against the static skeleton model\n\
         \u{20}  races <trace> [flags]       message races under causal happened-before\n\
         \u{20}  audit <trace> [flags]       replay the merge log as a certificate (A codes)\n\
         \u{20}  shrink <trace> --code C     ddmin-minimize a diagnostic reproducer\n\
         \u{20}  critical-path <trace>       longest dependent chain\n\n\
         EXTRACTION FLAGS (extract/render/metrics/lint/analyze/model/races)\n\
         \u{20}  --mpi --physical --no-infer --no-split --no-sdag --parallel\n\
         \u{20}  --no-process-order --verify --threads N (0 = auto)\n\n\
         LINT FLAGS\n\
         \u{20}  --json                   machine-readable report\n\
         \u{20}  --deny-warnings          exit nonzero on warnings too\n\
         \u{20}  --limit N                cap findings per pass family (default 64)\n\
         \u{20}  --no-structure           skip extraction; trace-level passes only\n\n\
         ANALYZE FLAGS (plus the extraction flags above)\n\
         \u{20}  --json                   machine-readable report\n\
         \u{20}  --deny CODES             comma-separated D codes (or `warnings`) that\n\
         \u{20}                           make the exit status failing (e.g. D002,D004)\n\
         \u{20}  --bottleneck-share X     D001 gated-work threshold in [0,1] (default 0.5)\n\
         \u{20}  --limit N                cap findings (default 64)\n\n\
         MODEL FLAGS (plus the extraction flags above)\n\
         \u{20}  --json                   machine-readable report (model + M diagnostics)\n\
         \u{20}  --deny CODES             comma-separated M codes (or `warnings`) that\n\
         \u{20}                           make the exit status failing (e.g. M004)\n\
         \u{20}  --limit N                cap findings (default 64)\n\n\
         RACES FLAGS\n\
         \u{20}  --json                       machine-readable report\n\
         \u{20}  --deny-structure-affecting   exit nonzero when a race can change\n\
         \u{20}                               the recovered structure (R002)\n\
         \u{20}  --limit N                    cap reported races (default 64)\n\
         \u{20}  --engine clocks|dynamic      happened-before engine (default dynamic);\n\
         \u{20}                               both produce identical reports\n\n\
         AUDIT FLAGS (plus the extraction flags above)\n\
         \u{20}  --json                   machine-readable report\n\
         \u{20}  --limit N                cap findings (default 64); exits nonzero\n\
         \u{20}                           on any error-severity A code\n\n\
         FUZZ FLAGS\n\
         \u{20}  --seed S                 master seed (default 0)\n\
         \u{20}  --count N                scenarios to generate (default 16)\n\
         \u{20}  --motifs LIST            comma-separated motif pool (default all):\n\
         \u{20}                           halo wavefront tree alltoall steal migration\n\
         \u{20}  --backend charm|mpi      restrict to one backend (default both)\n\
         \u{20}  --export DIR             write every generated trace into DIR\n\
         \u{20}                           (failures are always written, plus a ddmin\n\
         \u{20}                           reproducer when a diagnostic code fired)\n\n\
         SHRINK FLAGS (plus the extraction flags, which shape the oracle)\n\
         \u{20}  --code CODE              diagnostic to preserve (I/T/H/S/P/A/M/R code)\n\
         \u{20}  --out FILE               reproducer path (default <trace>.min.lsrtrace)\n\
         \u{20}  --max-probes N           oracle probe budget (default 4096)\n\n\
         INGESTION (any command that reads a trace)\n\
         \u{20}  --salvage                skip malformed records instead of aborting;\n\
         \u{20}                           findings print to stderr (I codes, see\n\
         \u{20}                           docs/lints.md); `lsr lint --salvage` merges\n\
         \u{20}                           them into the report\n\n\
         WINDOWING (extract/render/metrics/report)\n\
         \u{20}  --from NS --to NS        analyze only tasks inside [from, to]\n\n\
         OBSERVABILITY (every command; docs/observability.md)\n\
         \u{20}  --profile                span/counter report on stderr\n\
         \u{20}  --profile-json FILE      JSON profile (schema lsr-obs-profile/2,\n\
         \u{20}                           `-` for stdout)\n\n\
         RENDER FLAGS\n\
         \u{20}  --view logical|physical|migration   --format ascii|svg|dot\n\
         \u{20}  --metric phase|diff|idle|imbalance   --out FILE"
    );
}

/// Splits positional arguments from `--flag [value]` options.
/// Unknown flags are an error, not a silent no-op.
fn parse_opts(
    args: &[String],
) -> Result<(Vec<&str>, std::collections::HashMap<String, String>), String> {
    const VALUE_FLAGS: &[&str] = &[
        "out",
        "view",
        "format",
        "metric",
        "from",
        "to",
        "limit",
        "profile-json",
        "code",
        "max-probes",
        "deny",
        "bottleneck-share",
        "threads",
        "seed",
        "count",
        "motifs",
        "backend",
        "export",
        "engine",
    ];
    const BOOL_FLAGS: &[&str] = &[
        "profile",
        "mpi",
        "physical",
        "no-infer",
        "no-split",
        "no-sdag",
        "parallel",
        "no-process-order",
        "verify",
        "json",
        "deny-warnings",
        "deny-structure-affecting",
        "no-structure",
        "salvage",
    ];
    let mut pos = Vec::new();
    let mut opts = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if VALUE_FLAGS.contains(&name) {
                let value = args.get(i + 1).ok_or_else(|| format!("--{name} requires a value"))?;
                opts.insert(name.to_owned(), value.clone());
                i += 2;
            } else if BOOL_FLAGS.contains(&name) {
                opts.insert(name.to_owned(), String::new());
                i += 1;
            } else {
                return Err(format!("unknown flag --{name} (run `lsr help`)"));
            }
        } else {
            pos.push(a.as_str());
            i += 1;
        }
    }
    Ok((pos, opts))
}

/// One command's observability session (DESIGN §7.8): the recorder
/// threaded through ingestion and the pipeline, plus the report
/// destinations picked on the command line. `--profile` prints the
/// ASCII span tree to stderr so stdout stays parseable;
/// `--profile-json FILE` writes the schema-versioned JSON profile
/// (`-` selects stdout). Without either flag the recorder is disabled
/// and every instrumentation site reduces to one branch.
struct Obs {
    rec: lsr::obs::Recorder,
    ascii: bool,
    json: Option<String>,
}

impl Obs {
    fn from_opts(opts: &std::collections::HashMap<String, String>) -> Obs {
        let ascii = opts.contains_key("profile");
        let json = opts.get("profile-json").cloned();
        let rec = if ascii || json.is_some() {
            lsr::obs::Recorder::enabled()
        } else {
            lsr::obs::Recorder::disabled()
        };
        Obs { rec, ascii, json }
    }

    /// Emits the requested profile reports. A disabled recorder has no
    /// profile, so unprofiled runs emit nothing and are unchanged.
    fn finish(&self, command: &str) -> Result<(), String> {
        let Some(p) = self.rec.profile(command) else { return Ok(()) };
        if self.ascii {
            eprint!("{}", lsr::render::profile_report(&p));
        }
        if let Some(path) = &self.json {
            let json = p.to_json();
            if path == "-" {
                println!("{json}");
            } else {
                std::fs::write(path, json.as_bytes())
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
        }
        Ok(())
    }
}

fn config_from(
    opts: &std::collections::HashMap<String, String>,
    obs: &Obs,
) -> Result<Config, String> {
    let mut cfg = if opts.contains_key("mpi") { Config::mpi() } else { Config::charm() };
    if opts.contains_key("physical") {
        cfg = cfg.with_ordering(OrderingPolicy::PhysicalTime);
    }
    if opts.contains_key("no-infer") {
        cfg = cfg.with_inference(false);
    }
    if opts.contains_key("no-split") {
        cfg = cfg.with_split(false);
    }
    if opts.contains_key("no-sdag") {
        cfg = cfg.with_sdag(false);
    }
    if opts.contains_key("parallel") {
        cfg = cfg.with_parallel(true);
    }
    if opts.contains_key("no-process-order") {
        cfg = cfg.with_process_order(false);
    }
    if opts.contains_key("verify") {
        cfg = cfg.with_verify(true);
    }
    if let Some(v) = opts.get("threads") {
        let n: usize = v
            .parse()
            .map_err(|_| format!("--threads expects a non-negative integer, got `{v}`"))?;
        cfg = cfg.with_threads(n);
    }
    Ok(cfg.with_recorder(obs.rec.clone()))
}

/// Reads a trace in either layout (`<base>.sts` selects the multi-file
/// per-PE layout). With `--salvage`, malformed records are skipped
/// instead of aborting and the ingestion findings come back alongside
/// the trace for the caller to surface.
fn load_report(
    path: &str,
    opts: &std::collections::HashMap<String, String>,
    rec: &lsr::obs::Recorder,
) -> Result<(Trace, Option<lsr::trace::IngestReport>), String> {
    let _sp = rec.span("ingest");
    let salvage = opts.contains_key("salvage");
    if let Some(base) = path.strip_suffix(".sts") {
        let p = std::path::Path::new(base);
        let dir =
            p.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(std::path::Path::new("."));
        let stem = p.file_name().and_then(|f| f.to_str()).ok_or("bad sts path")?;
        if !std::path::Path::new(path).exists() {
            return Err(format!("cannot open {path}: not found"));
        }
        return if salvage {
            lsr::trace::multifile::read_split_salvage_with(dir, stem, rec)
                .map(|(t, r)| (t, Some(r)))
                .map_err(|e| format!("cannot parse split trace {path}: {e}"))
        } else {
            lsr::trace::multifile::read_split_with(dir, stem, rec)
                .map(|t| (t, None))
                .map_err(|e| format!("cannot parse split trace {path}: {e}"))
        };
    }
    let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let r = std::io::BufReader::new(f);
    if salvage {
        logfmt::read_log_salvage_with(r, rec)
            .map(|(t, rep)| (t, Some(rep)))
            .map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        logfmt::read_log_with(r, rec)
            .map(|t| (t, None))
            .map_err(|e| format!("cannot parse {path}: {e}"))
    }
}

fn load(
    path: &str,
    opts: &std::collections::HashMap<String, String>,
    rec: &lsr::obs::Recorder,
) -> Result<Trace, String> {
    let (trace, report) = load_report(path, opts, rec)?;
    if let Some(rep) = report {
        // Salvage findings go to stderr so stdout stays parseable.
        for d in &rep.diagnostics {
            eprintln!("{d}");
        }
        if rep.suppressed > 0 {
            eprintln!("({} more finding(s) suppressed)", rep.suppressed);
        }
        if !rep.is_clean() {
            eprintln!("salvage: {}", rep.summary());
        }
    }
    Ok(trace)
}

/// Loads a trace and applies an optional `--from`/`--to` time window
/// (nanoseconds since run start).
fn load_windowed(
    path: &str,
    opts: &std::collections::HashMap<String, String>,
    rec: &lsr::obs::Recorder,
) -> Result<Trace, String> {
    let trace = load(path, opts, rec)?;
    apply_window(trace, opts)
}

/// Applies the `--from`/`--to` window flags to an already-loaded trace.
fn apply_window(
    trace: Trace,
    opts: &std::collections::HashMap<String, String>,
) -> Result<Trace, String> {
    let parse = |key: &str, default: u64| -> Result<u64, String> {
        match opts.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants nanoseconds, got {v:?}")),
        }
    };
    let from = parse("from", 0)?;
    let to = parse("to", u64::MAX)?;
    if from == 0 && to == u64::MAX {
        return Ok(trace);
    }
    if from > to {
        return Err(format!("--from {from} exceeds --to {to}"));
    }
    Ok(lsr::trace::window(&trace, lsr::trace::Time(from), lsr::trace::Time(to)))
}

/// Unified `--deny` exit policy for the diagnostic commands (the table
/// lives in docs/lints.md §"Exit codes"). The denied set is the
/// comma-separated `--deny` value plus the aliases `--deny-warnings`
/// (the token `warnings`) and `--deny-structure-affecting` (`R002`).
/// A run fails when any reported diagnostic carries a denied code, when
/// `warnings` is denied and any warning was reported — or, for the
/// commands where errors are hard failures (`errors_fail`: lint,
/// analyze, model — not races, whose R family is opt-in by design),
/// when any error-severity diagnostic was reported.
fn exit_status(
    opts: &std::collections::HashMap<String, String>,
    diagnostics: &[lsr::lint::Diagnostic],
    errors_fail: bool,
) -> ExitCode {
    let mut denied: Vec<&str> =
        opts.get("deny").map(|v| v.split(',').map(str::trim).collect()).unwrap_or_default();
    if opts.contains_key("deny-warnings") {
        denied.push("warnings");
    }
    if opts.contains_key("deny-structure-affecting") {
        denied.push("R002");
    }
    let failing = diagnostics.iter().any(|d| {
        (errors_fail && d.severity == lsr::lint::Severity::Error)
            || denied.contains(&d.code)
            || (denied.contains(&"warnings") && d.severity == lsr::lint::Severity::Warning)
    });
    if failing {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn extract_from(args: &[String]) -> Result<(Trace, LogicalStructure, Obs), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let ls = try_extract(&trace, &cfg).map_err(|e| format!("cannot extract structure: {e}"))?;
    {
        let _sp = obs.rec.span("verify");
        ls.verify(&trace).map_err(|e| format!("internal invariant violated: {e}"))?;
    }
    Ok((trace, ls, obs))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    use lsr::apps::*;
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let preset = *pos.first().ok_or("missing preset name")?;
    let sp_gen = obs.rec.span("generate");
    let trace = match preset {
        "jacobi-fig8" => jacobi2d(&JacobiParams::fig8()),
        "jacobi-fig15" => jacobi2d(&JacobiParams::fig15()),
        "lulesh-charm" => lulesh_charm(&LuleshParams::fig16_charm()),
        "lulesh-mpi" => lulesh_mpi(&LuleshParams::fig16_mpi()),
        "lassen8" => lassen_charm(&LassenParams::chares8()),
        "lassen64" => lassen_charm(&LassenParams::chares64()),
        "lassen-mpi" => lassen_mpi(&LassenParams::mpi(4, 2)),
        "pdes" => pdes_charm(&PdesParams::fig24()),
        "mergetree" => mergetree_mpi(&MergeTreeParams::small()),
        "mergetree1024" => mergetree_mpi(&MergeTreeParams::fig10()),
        "bt" => bt_mpi(&BtParams::fig1()),
        "divcon" => divcon_charm(&DivConParams::small()),
        other => return Err(format!("unknown preset {other:?} (run `lsr help`)")),
    };
    drop(sp_gen);
    obs.rec.add("gen.tasks", trace.tasks.len() as u64);
    obs.rec.add("gen.events", trace.events.len() as u64);
    obs.rec.add("gen.messages", trace.msgs.len() as u64);
    let sp_write = obs.rec.span("write");
    let default = format!("{preset}.lsrtrace");
    let out = opts.get("out").map(String::as_str).unwrap_or(&default);
    if let Some(base) = out.strip_suffix(".sts") {
        // Multi-file per-PE layout (Projections-style).
        let p = std::path::Path::new(base);
        let dir =
            p.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(std::path::Path::new("."));
        let stem = p.file_name().and_then(|f| f.to_str()).ok_or("bad sts path")?;
        let files = lsr::trace::multifile::write_split(&trace, dir, stem)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote {files} files ({out} + per-PE logs): {} tasks, {} events, {} messages on {} PEs",
            trace.tasks.len(),
            trace.events.len(),
            trace.msgs.len(),
            trace.pe_count
        );
        drop(sp_write);
        return obs.finish("gen");
    }
    let f = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    logfmt::write_log(&trace, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} tasks, {} events, {} messages on {} PEs",
        trace.tasks.len(),
        trace.events.len(),
        trace.msgs.len(),
        trace.pe_count
    );
    drop(sp_write);
    obs.finish("gen")
}

fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    use lsr::fuzz::{emit, run_fuzz, Backend, FuzzParams, Motif, Scenario};
    let (pos, opts) = parse_opts(args)?;
    if let Some(p) = pos.first() {
        return Err(format!("fuzz takes no positional arguments, got {p:?}"));
    }
    let obs = Obs::from_opts(&opts);
    let mut params = FuzzParams::default();
    if let Some(v) = opts.get("seed") {
        params.seed =
            v.parse().map_err(|_| format!("--seed wants a non-negative integer, got {v:?}"))?;
    }
    if let Some(v) = opts.get("count") {
        params.count = v.parse().map_err(|_| format!("--count wants a number, got {v:?}"))?;
        if params.count == 0 {
            return Err("--count must be at least 1".into());
        }
    }
    if let Some(v) = opts.get("motifs") {
        let mut motifs: Vec<Motif> = Vec::new();
        for tok in v.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let m = Motif::parse(tok).ok_or_else(|| {
                format!(
                    "unknown motif {tok:?} (catalog: halo wavefront tree alltoall steal migration)"
                )
            })?;
            if !motifs.contains(&m) {
                motifs.push(m);
            }
        }
        if motifs.is_empty() {
            return Err("--motifs needs at least one motif".into());
        }
        params.motifs = motifs;
    }
    if let Some(v) = opts.get("backend") {
        let b = Backend::parse(v)
            .ok_or_else(|| format!("unknown backend {v:?} (expected charm or mpi)"))?;
        params.backends = vec![b];
    }
    let export = opts.get("export").map(std::path::PathBuf::from);
    if let Some(dir) = &export {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }

    let sp = obs.rec.span("fuzz");
    let outcomes = run_fuzz(&params, &obs.rec);
    drop(sp);

    // A failing scenario is always written out (reproducers must
    // outlive the run); passing scenarios only under --export.
    let write_trace = |sc: &Scenario, backend: Backend| -> Result<String, String> {
        let name = format!("fuzz-{}-{:04}.{backend}.lsrtrace", params.seed, sc.id);
        let path =
            export.as_deref().map(|d| d.join(&name).to_string_lossy().into_owned()).unwrap_or(name);
        let trace = emit(sc, backend);
        let f = std::fs::File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
        logfmt::write_log(&trace, std::io::BufWriter::new(f)).map_err(|e| e.to_string())?;
        obs.rec.add("fuzz.exported", 1);
        Ok(path)
    };

    let mut failures = 0usize;
    for o in &outcomes {
        match &o.failure {
            None => {
                if export.is_some() {
                    write_trace(&o.scenario, o.backend)?;
                }
            }
            Some(f) => {
                failures += 1;
                let path = write_trace(&o.scenario, o.backend)?;
                print!("FAIL scenario {} ({}): {f} — wrote {path}", o.scenario.id, o.backend);
                if let Some(code) = f.shrink_code() {
                    let log = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
                    let shrink_opts = lsr::audit::ShrinkOptions {
                        config: o.backend.config(),
                        ..Default::default()
                    };
                    match lsr::audit::shrink_log(&log, code, &shrink_opts) {
                        Ok(r) => {
                            let min = format!("{path}.min.lsrtrace");
                            std::fs::write(&min, r.log.as_bytes())
                                .map_err(|e| format!("cannot write {min}: {e}"))?;
                            obs.rec.add("fuzz.shrunk", 1);
                            print!(
                                " (+ {min}: {} -> {} records, {code} still fires)",
                                r.original_records, r.final_records
                            );
                        }
                        Err(e) => print!(" (shrink failed: {e})"),
                    }
                }
                println!();
            }
        }
    }

    println!(
        "fuzzed {} scenario(s) x {} backend(s) from seed {}: {} trace(s), {} failure(s)",
        params.count,
        params.backends.len(),
        params.seed,
        outcomes.len(),
        failures
    );
    obs.finish("fuzz")?;
    Ok(if failures == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let trace = load(pos.first().ok_or("missing trace file argument")?, &opts, &obs.rec)?;
    {
        let _sp = obs.rec.span("stats");
        println!("{}", TraceStats::compute(&trace));
    }
    obs.finish("stats")
}

fn cmd_quality(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let trace = load(pos.first().ok_or("missing trace file argument")?, &opts, &obs.rec)?;
    {
        let _sp = obs.rec.span("quality");
        println!("{}", QualityReport::analyze(&trace));
    }
    obs.finish("quality")
}

fn cmd_extract(args: &[String]) -> Result<(), String> {
    let (trace, ls, obs) = extract_from(args)?;
    println!("{}", ls.summary(&trace));
    obs.finish("extract")
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let ls = try_extract(&trace, &cfg).map_err(|e| format!("cannot extract structure: {e}"))?;
    {
        let _sp = obs.rec.span("verify");
        ls.verify(&trace).map_err(|e| format!("internal invariant violated: {e}"))?;
    }

    let view = opts.get("view").map(String::as_str).unwrap_or("logical");
    let format = opts.get("format").map(String::as_str).unwrap_or("ascii");
    let metric = opts.get("metric").map(String::as_str).unwrap_or("phase");

    let sp_metrics = obs.rec.span("metrics");
    let metric_values: Option<Vec<f64>> = match metric {
        "phase" => None,
        "diff" => Some(
            DifferentialDuration::compute(&trace, &ls)
                .per_event
                .iter()
                .map(|d| d.nanos() as f64)
                .collect(),
        ),
        "idle" => {
            let idle = idle_experienced(&trace);
            Some(
                trace
                    .event_ids()
                    .map(|e| idle[trace.event(e).task.index()].nanos() as f64)
                    .collect(),
            )
        }
        "imbalance" => {
            let imb = Imbalance::compute(&trace, &ls);
            Some(
                trace.event_ids().map(|e| imb.event_value(&trace, &ls, e).nanos() as f64).collect(),
            )
        }
        other => return Err(format!("unknown metric {other:?}")),
    };
    drop(sp_metrics);

    let sp_render = obs.rec.span("render");
    let output = match (format, view) {
        ("ascii", "logical") => match &metric_values {
            None => lsr::render::logical_by_phase(&trace, &ls),
            Some(v) => lsr::render::logical_by_metric(&trace, &ls, v),
        },
        ("ascii", "physical") => lsr::render::physical_by_phase(&trace, &ls),
        ("dot", _) => lsr::render::phase_dag_dot(&trace, &ls),
        (_, "migration") => lsr::render::migration_svg(&trace),
        ("svg", view) => {
            let coloring = match metric_values {
                None => lsr::render::Coloring::Phase,
                Some(v) => lsr::render::Coloring::Metric(v),
            };
            match view {
                "logical" => lsr::render::logical_svg(&trace, &ls, &coloring),
                "physical" => lsr::render::physical_svg(&trace, &ls, &coloring),
                other => return Err(format!("unknown view {other:?}")),
            }
        }
        (f, v) => return Err(format!("unsupported format/view {f:?}/{v:?}")),
    };
    drop(sp_render);
    match opts.get("out") {
        Some(out) => {
            std::fs::write(out, output).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {out}");
        }
        None => print!("{output}"),
    }
    obs.finish("render")
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let (trace, ls, obs) = extract_from(args)?;
    let sp_metrics = obs.rec.span("metrics");
    let idle = idle_experienced(&trace);
    println!("== idle experienced per PE ==");
    for (pe, d) in per_pe_totals(&trace, &idle).iter().enumerate() {
        println!("  pe{pe}: {d}");
    }
    let dd = DifferentialDuration::compute(&trace, &ls);
    println!("\n== differential duration: top events ==");
    for (e, d) in dd.outliers(lsr::trace::Dur(1)).into_iter().take(10) {
        let c = trace.chare(trace.event_chare(e));
        println!(
            "  {e} step {:>5} {}[{}]: {d}",
            ls.global_step(e),
            trace.array(c.array).name,
            c.index
        );
    }
    println!("\n== per-phase profile ==");
    print!("{}", lsr::metrics::profile_table(&trace, &ls));
    let imb = Imbalance::compute(&trace, &ls);
    println!("\n== imbalance ==");
    println!("  per-phase sum: {}", imb.total());
    println!("  overall (max PE − min PE): {}", imb.overall());
    println!("  mean relative per phase: {:.1}%", imb.mean_relative() * 100.0);
    drop(sp_metrics);
    obs.finish("metrics")
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let ls = try_extract(&trace, &cfg).map_err(|e| format!("cannot extract structure: {e}"))?;
    {
        let _sp = obs.rec.span("verify");
        ls.verify(&trace).map_err(|e| format!("internal invariant violated: {e}"))?;
    }
    let html = {
        let _sp = obs.rec.span("render");
        lsr::render::html_report(path, &trace, &ls)
    };
    let default = format!("{path}.html");
    let out = opts.get("out").map(String::as_str).unwrap_or(&default);
    std::fs::write(out, html).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {out}");
    obs.finish("report")
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let (pa, pb) = match pos.as_slice() {
        [a, b] => (*a, *b),
        _ => return Err("diff wants exactly two trace files".into()),
    };
    let cfg = config_from(&opts, &obs)?;
    let (ta, tb) = (load(pa, &opts, &obs.rec)?, load(pb, &opts, &obs.rec)?);
    let la = try_extract(&ta, &cfg).map_err(|e| format!("{pa}: cannot extract structure: {e}"))?;
    la.verify(&ta).map_err(|e| format!("{pa}: {e}"))?;
    let lb = try_extract(&tb, &cfg).map_err(|e| format!("{pb}: cannot extract structure: {e}"))?;
    lb.verify(&tb).map_err(|e| format!("{pb}: {e}"))?;
    let d = {
        let _sp = obs.rec.span("diff");
        lsr::metrics::StructureDiff::compute(&ta, &la, &tb, &lb)
    };
    print!("{d}");
    if d.same_structure() {
        println!("=> structurally identical runs");
    } else {
        println!("=> structures diverge; inspect the ! rows above");
    }
    obs.finish("diff")
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    // Lint wants to diagnose broken files, so single-file logs load
    // without the reader's validation pass (the T lints re-run it with
    // coded findings). Windowing and the split layout rewrite the
    // trace on load, so those paths keep the strict reader. With
    // `--salvage` the ingestion findings are merged into the report
    // (I codes) instead of being printed to stderr.
    let windowed = opts.contains_key("from") || opts.contains_key("to");
    let (trace, ingest) = if opts.contains_key("salvage") {
        let (t, rep) = load_report(path, &opts, &obs.rec)?;
        (apply_window(t, &opts)?, rep)
    } else if windowed || path.ends_with(".sts") {
        (load_windowed(path, &opts, &obs.rec)?, None)
    } else {
        let _sp = obs.rec.span("ingest");
        let f = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let t = logfmt::read_log_unchecked_with(std::io::BufReader::new(f), &obs.rec)
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        (t, None)
    };
    let mut lint_opts = lsr::lint::LintOptions::with_config(config_from(&opts, &obs)?);
    if let Some(v) = opts.get("limit") {
        lint_opts.limit = v.parse().map_err(|_| format!("--limit wants a number, got {v:?}"))?;
    }
    if opts.contains_key("no-structure") {
        lint_opts.check_structure = false;
    }
    let sp_lint = obs.rec.span("lint");
    let mut report = lsr::lint::lint_trace(&trace, &lint_opts);
    drop(sp_lint);
    if let Some(rep) = &ingest {
        let mut merged = lsr::lint::ingest_diagnostics(rep);
        merged.append(&mut report.diagnostics);
        report.diagnostics = merged;
    }
    if opts.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{path}: {} error(s), {} warning(s){}",
            report.error_count(),
            report.warning_count(),
            if report.structure_checked { "" } else { " (structure passes skipped)" }
        );
    }
    obs.finish("lint")?;
    Ok(exit_status(&opts, &report.diagnostics, true))
}

fn cmd_analyze(args: &[String]) -> Result<ExitCode, String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let ls = try_extract(&trace, &cfg).map_err(|e| format!("cannot extract structure: {e}"))?;

    let mut aopts = lsr::flow::AnalyzeOptions::default();
    if let Some(v) = opts.get("limit") {
        aopts.limit = v.parse().map_err(|_| format!("--limit wants a number, got {v:?}"))?;
    }
    if let Some(v) = opts.get("bottleneck-share") {
        aopts.bottleneck_share = v
            .parse::<f64>()
            .ok()
            .filter(|s| (0.0..=1.0).contains(s))
            .ok_or_else(|| format!("--bottleneck-share wants a number in [0,1], got {v:?}"))?;
    }
    let report = lsr::lint::analyze_structure(&trace, &ls, &obs.rec, &aopts);
    if opts.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{path}: {} error(s), {} warning(s) over {} phase(s)",
            report.error_count(),
            report.warning_count(),
            ls.num_phases()
        );
    }
    obs.finish("analyze")?;
    Ok(exit_status(&opts, &report.diagnostics, true))
}

fn cmd_model(args: &[String]) -> Result<ExitCode, String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let ls = try_extract(&trace, &cfg).map_err(|e| format!("cannot extract structure: {e}"))?;
    let limit = match opts.get("limit") {
        None => lsr::lint::DEFAULT_DIAG_LIMIT,
        Some(v) => v.parse().map_err(|_| format!("--limit wants a number, got {v:?}"))?,
    };
    // The skeleton is built from the declaration layer only; the trace
    // and the recovered structure appear only on the observed side of
    // the conformance check.
    let model = lsr::model::build_with(&trace.declarations(), &obs.rec);
    let report = lsr::model::check_with(&model, &trace, &ls, &obs.rec);
    let diags = lsr::lint::model_diagnostics(&report, limit);
    if opts.contains_key("json") {
        println!("{}", lsr::lint::model_report_json(&model, &diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        let errors = diags.iter().filter(|d| d.severity == lsr::lint::Severity::Error).count();
        println!(
            "{path}: {} error(s), {} warning(s); skeleton: {} family(ies), \
             {} signature(s), {} tree shape(s){}",
            errors,
            diags.len() - errors,
            model.families.len(),
            model.sigs.len(),
            model.shapes.len(),
            if model.degraded { " (degraded)" } else { "" }
        );
    }
    obs.finish("model")?;
    Ok(exit_status(&opts, &diags, true))
}

fn cmd_races(args: &[String]) -> Result<ExitCode, String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let limit = match opts.get("limit") {
        None => lsr::lint::DEFAULT_DIAG_LIMIT,
        Some(v) => v.parse().map_err(|_| format!("--limit wants a number, got {v:?}"))?,
    };
    let engine = match opts.get("engine") {
        None => lsr::lint::HbEngine::default(),
        Some(v) => lsr::lint::HbEngine::parse(v)
            .ok_or_else(|| format!("--engine wants `clocks` or `dynamic`, got {v:?}"))?,
    };
    let sp_races = obs.rec.span("races");
    let report = lsr::lint::analyze_races_with(&trace, &cfg, limit, engine).map_err(|cyc| {
        let shown: Vec<String> = cyc.iter().take(8).map(|t| t.to_string()).collect();
        format!(
            "causal happened-before cycle through {} task(s): {} — run `lsr lint` first",
            cyc.len(),
            shown.join(" -> ")
        )
    })?;
    drop(sp_races);
    if opts.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{path}: {} race(s): {} benign, {} structure-affecting ({} pair(s) scanned{})",
            report.races.len(),
            report.benign_count(),
            report.structure_affecting_count(),
            report.scanned_pairs,
            if report.truncated { ", truncated" } else { "" }
        );
    }
    obs.finish("races")?;
    Ok(exit_status(&opts, &report.diagnostics, false))
}

fn cmd_audit(args: &[String]) -> Result<ExitCode, String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    let trace = load_windowed(path, &opts, &obs.rec)?;
    let cfg = config_from(&opts, &obs)?;
    let mut audit_opts = lsr::audit::AuditOptions::default();
    if let Some(v) = opts.get("limit") {
        audit_opts.limit = v.parse().map_err(|_| format!("--limit wants a number, got {v:?}"))?;
    }
    let (ls, report) = lsr::audit::audit_extract(&trace, &cfg, audit_opts)
        .map_err(|e| format!("cannot extract structure: {e}"))?;
    if opts.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "{path}: certificate {}: {} error(s), {} warning(s); {} record(s) replayed, \
             {} check(s) over {} phase(s)",
            if report.is_certified() { "OK" } else { "REJECTED" },
            report.error_count(),
            report.warning_count(),
            report.records_replayed,
            report.checks,
            ls.num_phases(),
        );
    }
    obs.finish("audit")?;
    Ok(if report.is_certified() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_shrink(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let path = pos.first().ok_or("missing trace file argument")?;
    if path.ends_with(".sts") {
        return Err("shrink works on single-file logs, not the .sts split layout".into());
    }
    let code = opts.get("code").ok_or("--code CODE is required (e.g. --code T005)")?;
    let log = std::fs::read_to_string(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut shrink_opts =
        lsr::audit::ShrinkOptions { config: config_from(&opts, &obs)?, ..Default::default() };
    if let Some(v) = opts.get("max-probes") {
        shrink_opts.max_probes =
            v.parse().map_err(|_| format!("--max-probes wants a number, got {v:?}"))?;
    }
    let result = lsr::audit::shrink_log(&log, code, &shrink_opts).map_err(|e| e.to_string())?;
    let default = format!("{path}.min.lsrtrace");
    let out = opts.get("out").map(String::as_str).unwrap_or(&default);
    std::fs::write(out, result.log.as_bytes()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} -> {} record line(s) ({:.1}% removed) in {} probe(s); {code} still fires",
        result.original_records,
        result.final_records,
        result.reduction() * 100.0,
        result.probes
    );
    obs.finish("shrink")
}

fn cmd_critical_path(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_opts(args)?;
    let obs = Obs::from_opts(&opts);
    let trace = load(pos.first().ok_or("missing trace file argument")?, &opts, &obs.rec)?;
    let sp_cp = obs.rec.span("critical-path");
    let cp = CriticalPath::compute(&trace);
    println!(
        "critical path: {} tasks, {} work over {} makespan (ratio {:.2})",
        cp.tasks.len(),
        cp.work,
        lsr::trace::Dur(cp.makespan.nanos()),
        cp.work_ratio()
    );
    println!("PE shares of path work:");
    for (pe, share) in cp.pe_shares(&trace).iter().enumerate() {
        if *share > 0.0 {
            println!("  pe{pe}: {:.1}%", share * 100.0);
        }
    }
    println!("last 10 tasks on the path:");
    let tail: Vec<_> = cp.tasks.iter().rev().take(10).copied().collect();
    for &t in tail.iter().rev() {
        let rec = trace.task(t);
        let c = trace.chare(rec.chare);
        println!(
            "  {t} {}[{}] {} on {} [{} .. {}]",
            trace.array(c.array).name,
            c.index,
            trace.entry(rec.entry).name,
            rec.pe,
            rec.begin,
            rec.end
        );
    }
    drop(sp_cp);
    obs.finish("critical-path")
}
