//! # lsr — Logical Structure Recovery for task-based runtime traces
//!
//! Umbrella crate re-exporting the whole `lsr` workspace: a reproduction
//! of Isaacs et al., *"Recovering Logical Structure from Charm++ Event
//! Traces"* (SC '15).
//!
//! * [`trace`] — the event-trace data model ([`lsr_trace`]).
//! * [`charm`] — a Charm++-like discrete-event runtime simulator.
//! * [`mpi`] — a message-passing process simulator.
//! * [`core`] — phase finding, step assignment, and reordering (the
//!   paper's contribution).
//! * [`flow`] — monotone dataflow framework and reachability oracle
//!   over recovered structure ([`lsr_flow`], the D analyses).
//! * [`lint`] — diagnostic passes over traces and recovered structure.
//! * [`model`] — static skeleton analysis of the declaration layer and
//!   conformance checking against recovered structure ([`lsr_model`],
//!   the M diagnostics and the fuzzer's equivalence oracle).
//! * [`audit`] — certificate checking of merge provenance and ddmin
//!   counterexample minimization ([`lsr_audit`]).
//! * [`fuzz`] — seeded scenario fuzzing: motif composition through
//!   both backends plus the differential oracle stack ([`lsr_fuzz`]).
//! * [`metrics`] — idle experienced, differential duration, imbalance.
//! * [`obs`] — span/counter observability for the pipeline
//!   ([`lsr_obs`], the `--profile` machinery).
//! * [`apps`] — proxy applications (Jacobi 2D, LULESH-like, LASSEN-like,
//!   PDES, merge tree, BT stencil).
//! * [`render`] — ASCII/SVG views of logical structure and physical time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lsr_apps as apps;
pub use lsr_audit as audit;
pub use lsr_charm as charm;
pub use lsr_core as core;
pub use lsr_flow as flow;
pub use lsr_fuzz as fuzz;
pub use lsr_lint as lint;
pub use lsr_metrics as metrics;
pub use lsr_model as model;
pub use lsr_mpi as mpi;
pub use lsr_obs as obs;
pub use lsr_render as render;
pub use lsr_trace as trace;
