//! Mutation tests for the D-family analyses (`lsr analyze`): every D
//! code must fire when a structure is corrupted the way the code
//! describes, and none may fire on a faithful recovery — neither on the
//! hand-built harness below nor on any proxy-app preset.
//!
//! The harness builds a trace and its *exact* logical structure by
//! hand (one chare, task, and phase per DAG node; one message per
//! edge), so each mutation flips precisely one invariant and the test
//! can assert the one diagnostic it expects.

use lsr::core::{extract, Config, LogicalStructure, Phase};
use lsr::flow::AnalyzeOptions;
use lsr::lint::analyze_structure;
use lsr::obs::Recorder;
use lsr::trace::{ChareId, Kind, MsgId, PeId, TaskId, Time, Trace, TraceBuilder};

/// One chare per node on its own PE, one task per chare, one message
/// per DAG edge (the first incoming edge triggers the task; extra
/// in-edges stay unmatched sends, which is legal). `edges` must be
/// topologically numbered (`u < v`).
fn harness(edges: &[(usize, usize)], durs: &[u64]) -> (Trace, LogicalStructure) {
    let n = durs.len();
    let mut b = TraceBuilder::new(n as u32);
    let app = b.add_array("a", Kind::Application);
    let chares: Vec<ChareId> = (0..n).map(|i| b.add_chare(app, i as u32, PeId(i as u32))).collect();
    let e = b.add_entry("step", None);

    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        assert!(u < v, "edge list must be topological");
        succs[u].push(v);
        preds[v].push(u);
    }

    let mut end = vec![0u64; n];
    let mut trigger: Vec<Option<MsgId>> = vec![None; n];
    for i in 0..n {
        assert!(durs[i] >= 1, "tasks must be long enough to hold their sends");
        let begin = preds[i].iter().map(|&p| end[p] + 1).max().unwrap_or(0);
        let t = match trigger[i] {
            Some(m) => b.begin_task_from(chares[i], e, PeId(i as u32), Time(begin), m),
            None => b.begin_task(chares[i], e, PeId(i as u32), Time(begin)),
        };
        for &s in &succs[i] {
            let m = b.record_send(t, Time(begin + 1), chares[s], e);
            if trigger[s].is_none() {
                trigger[s] = Some(m);
            }
        }
        b.end_task(t, Time(begin + durs[i]));
        end[i] = begin + durs[i];
    }
    let tr = b.build().expect("harness trace is valid");

    // Longest-path offsets with unit weights (max_local = 0), exactly
    // what §3.2's assembly would commit.
    let mut offset = vec![0u64; n];
    for i in 0..n {
        for &p in &preds[i] {
            offset[i] = offset[i].max(offset[p] + 1);
        }
    }
    let phases: Vec<Phase> = (0..n)
        .map(|i| Phase {
            id: i as u32,
            is_runtime: false,
            leap: offset[i] as u32,
            offset: offset[i],
            max_local: 0,
            tasks: vec![TaskId(i as u32)],
            chares: vec![chares[i]],
        })
        .collect();
    let phase_of_event: Vec<u32> = tr.events.iter().map(|ev| ev.task.0).collect();
    let nev = tr.events.len();
    let ls = LogicalStructure {
        phases,
        phase_succs: succs.iter().map(|ss| ss.iter().map(|&s| s as u32).collect()).collect(),
        phase_of_event,
        local_step: vec![0; nev],
        step: vec![0; nev],
        task_phase: (0..n as u32).collect(),
        diagnostics: Default::default(),
    };
    (tr, ls)
}

/// Fork-join-fork with a bypass: `0 -> {1,2} -> 3 -> {4,5}`, plus an
/// independent branch `0 -> 6` so not all work funnels through the
/// gate. Phase 3 is the only join, it touches one chare while two wait
/// on each side, and work is balanced, so the clean harness carries no
/// finding.
fn diamond() -> (Trace, LogicalStructure) {
    harness(&[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (0, 6)], &[2, 2, 2, 2, 2, 2, 2])
}

fn codes(tr: &Trace, ls: &LogicalStructure) -> Vec<&'static str> {
    codes_with(tr, ls, &AnalyzeOptions::default())
}

fn codes_with(tr: &Trace, ls: &LogicalStructure, opts: &AnalyzeOptions) -> Vec<&'static str> {
    analyze_structure(tr, ls, &Recorder::disabled(), opts)
        .diagnostics
        .iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn harness_is_analysis_clean() {
    let (tr, ls) = diamond();
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    assert!(report.is_clean(), "{report}");
}

// ---- D001: serialization bottlenecks. -------------------------------

#[test]
fn d001_dominator_gate_over_heavy_downstream_work() {
    let (mut tr, ls) = diamond();
    // Inflate a post-join task: the single-chare join (phase 3) now
    // dominates nearly all the run's work, and the two chares of
    // phases 4 and 5 both wait on it.
    tr.tasks[4].end = Time(tr.tasks[4].end.0 + 100);
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D001"], "{report}");
    let d = &report.diagnostics[0];
    assert!(d.message.contains("phase 3"), "{}", d.message);
    assert!(d.message.contains("downstream"), "{}", d.message);
}

#[test]
fn d001_postdominator_gate_over_heavy_upstream_work() {
    let (mut tr, ls) = diamond();
    // Inflate a pre-join task instead: everything before the fork must
    // now drain through phase 3.
    tr.tasks[1].end = Time(tr.tasks[1].end.0 + 100);
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D001"], "{report}");
    let d = &report.diagnostics[0];
    assert!(d.message.contains("phase 3"), "{}", d.message);
    assert!(d.message.contains("upstream"), "{}", d.message);
}

// ---- D002: redundant (transitively implied, witness-free) edges. ----

#[test]
fn d002_planted_skip_edge_over_the_join() {
    let (tr, mut ls) = diamond();
    // 0 -> 3 is implied via 1 (and 2), and phases 0 and 3 share no
    // chare: nothing in the trace could have minted the edge.
    ls.phase_succs[0].push(3);
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D002"], "{report}");
    assert!(report.diagnostics[0].message.contains("0 -> 3"), "{}", report.diagnostics[0].message);
}

#[test]
fn d002_planted_edge_past_the_join_names_its_witness() {
    let (tr, mut ls) = diamond();
    // 1 -> 4 is implied because 3 (another successor of 1) reaches 4.
    ls.phase_succs[1].push(4);
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D002"], "{report}");
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("1 -> 4"), "{msg}");
    assert!(msg.contains("phase 3"), "{msg}");
}

// ---- D003: orphan phases. -------------------------------------------

fn orphan(id: u32) -> Phase {
    Phase {
        id,
        is_runtime: false,
        leap: 0,
        offset: 0,
        max_local: 0,
        tasks: Vec::new(),
        chares: Vec::new(),
    }
}

#[test]
fn d003_truncated_tables_leave_an_orphan_phase() {
    let (tr, mut ls) = diamond();
    let id = ls.phases.len() as u32;
    ls.phases.push(orphan(id));
    ls.phase_succs.push(Vec::new());
    assert_eq!(codes(&tr, &ls), ["D003"]);
}

#[test]
fn d003_fires_once_per_orphan() {
    let (tr, mut ls) = diamond();
    let id = ls.phases.len() as u32;
    for k in 0..2 {
        ls.phases.push(orphan(id + k));
        ls.phase_succs.push(Vec::new());
    }
    assert_eq!(codes(&tr, &ls), ["D003", "D003"]);
}

// ---- D004: slack / critical-path disagreement. ----------------------

#[test]
fn d004_stretched_offset() {
    let (tr, mut ls) = diamond();
    ls.phases[4].offset = 9; // longest predecessor path ends at 3
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D004"], "{report}");
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("offset 9"), "{msg}");
    assert!(msg.contains("step 3"), "{msg}");
}

#[test]
fn d004_shrunk_offset() {
    let (tr, mut ls) = diamond();
    ls.phases[3].offset = 0; // inside its predecessors' span
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D004"], "{report}");
    assert!(report.diagnostics[0].message.contains("phase 3"));
}

#[test]
fn d004_critical_path_hop_between_unordered_phases() {
    let (tr, mut ls) = diamond();
    // Drop the 3 -> {4,5} edges and re-pack both successors' offsets
    // so the only disagreement left is the critical path: its
    // message-linked hop t3 -> t4 now crosses phases the structure
    // calls concurrent.
    ls.phase_succs[3].clear();
    ls.phases[4].offset = 0;
    ls.phases[5].offset = 0;
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["D004"], "{report}");
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("critical-path hop"), "{msg}");
    assert!(msg.contains("phase 3") && msg.contains("phase 4"), "{msg}");
}

// ---- D005 and the cyclic-input guard. -------------------------------

#[test]
fn d005_reports_truncation_at_the_limit() {
    let (tr, mut ls) = diamond();
    let id = ls.phases.len() as u32;
    for k in 0..3 {
        ls.phases.push(orphan(id + k));
        ls.phase_succs.push(Vec::new());
    }
    let opts = AnalyzeOptions { limit: 1, ..AnalyzeOptions::default() };
    assert_eq!(codes_with(&tr, &ls, &opts), ["D003", "D005"]);
}

#[test]
fn cyclic_phase_graph_reports_s002_only() {
    let (tr, mut ls) = diamond();
    ls.phase_succs[4].push(0); // 0 -> 1 -> 3 -> 4 -> 0
    let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["S002"], "{report}");
    assert_eq!(report.error_count(), 1);
}

// ---- No false positives: every proxy app analyzes clean. ------------

#[test]
fn all_proxy_apps_analyze_clean() {
    use lsr::apps::{
        bt_mpi, divcon_charm, jacobi2d, lassen_charm, lulesh_charm, lulesh_mpi, mergetree_mpi,
        pdes_charm, BtParams, DivConParams, JacobiParams, LassenParams, LuleshParams,
        MergeTreeParams, PdesParams,
    };
    let charm = Config::charm();
    let mpi = Config::mpi();
    let cases: Vec<(&str, Trace, Config)> = vec![
        ("jacobi", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi.clone()),
        ("divcon", divcon_charm(&DivConParams::small()), charm.clone()),
    ];
    for (name, tr, cfg) in cases {
        let ls = extract(&tr, &cfg);
        let report = analyze_structure(&tr, &ls, &Recorder::disabled(), &AnalyzeOptions::default());
        assert!(report.is_clean(), "{name} must analyze clean:\n{report}");
    }
}
