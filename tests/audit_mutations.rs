//! Certificate-check tests for `lsr-audit`: every generator preset must
//! certify clean, and each planted corruption of the provenance log or
//! the recovered structure must yield its A-code. Also covers the
//! `StructureVerifier::with_limit` truncation contract (deterministic,
//! reported via `Truncated`/S007 — never silent).

use lsr_audit::{audit, audit_extract, AuditOptions};
use lsr_core::{
    try_extract_with_provenance, Config, InvariantViolation, LogicalStructure, MergeProvenance,
    MergeRecord, ProvenanceRule, StructureVerifier,
};
use lsr_trace::{TaskId, Trace};
use std::collections::HashSet;

/// All eleven generator presets, each with the extraction configuration
/// its CLI invocation uses (kept in sync with `tests/obs_properties.rs`).
fn presets() -> Vec<(&'static str, Trace, Config)> {
    use lsr_apps::*;
    let charm = Config::charm();
    let mpi = Config::mpi();
    vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8()), charm.clone()),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen8", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("lassen64", lassen_charm(&LassenParams::chares64()), charm.clone()),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2)), mpi.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi),
        ("divcon", divcon_charm(&DivConParams::small()), charm),
    ]
}

/// The shared corruption substrate: jacobi-fig8 under the Charm++
/// configuration, with its certificate and structure.
fn substrate() -> (Trace, Config, LogicalStructure, MergeProvenance) {
    let cfg = Config::charm();
    let tr = lsr_apps::jacobi2d(&lsr_apps::JacobiParams::fig8());
    let (ls, prov) = try_extract_with_provenance(&tr, &cfg).expect("substrate extracts");
    (tr, cfg, ls, prov)
}

fn codes(report: &lsr_audit::AuditReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

/// Sorted unique final phase set of each task's events (the A003 fact).
fn task_phases(tr: &Trace, ls: &LogicalStructure) -> Vec<Vec<u32>> {
    let nphases = ls.phases.len() as u32;
    let mut out = vec![Vec::new(); tr.tasks.len()];
    for t in &tr.tasks {
        for e in t.events() {
            let p = ls.phase_of_event[e.index()];
            if p < nphases {
                out[t.id.index()].push(p);
            }
        }
        out[t.id.index()].sort_unstable();
        out[t.id.index()].dedup();
    }
    out
}

#[test]
fn all_presets_certify_clean() {
    for (name, tr, cfg) in presets() {
        let (ls, report) = audit_extract(&tr, &cfg, AuditOptions::default())
            .unwrap_or_else(|e| panic!("{name}: extraction must succeed: {e}"));
        assert!(
            report.diagnostics.is_empty(),
            "{name}: certificate must be clean, got {:?}",
            codes(&report)
        );
        assert!(report.is_certified(), "{name}: must certify");
        assert!(report.records_replayed > 0, "{name}: presets all merge something");
        assert!(report.checks > 0, "{name}: checks must run");
        assert!(report.replay_edges > 0, "{name}: presets all carry messages");
        assert!(!ls.phases.is_empty(), "{name}: structure must have phases");
    }
}

#[test]
fn replay_covers_every_record() {
    let (tr, cfg, ls, prov) = substrate();
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert_eq!(report.records_replayed, prov.len(), "clean replay must consume the whole log");
    assert!(report.is_certified());
}

#[test]
fn a001_rule_behind_disabled_stage() {
    let (tr, cfg, ls, prov) = substrate();
    let gated = prov.rule_count(ProvenanceRule::SdagAbsorb)
        + prov.rule_count(ProvenanceRule::SdagEdge)
        + prov.rule_count(ProvenanceRule::NeighborSerialMerge);
    assert!(gated > 0, "substrate must exercise an sdag-gated rule");
    // The certificate was produced with sdag inference on; checking it
    // against a no-sdag configuration must reject it.
    let report = audit(&tr, &cfg.clone().with_sdag(false), &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A001"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a002_fabricated_dependency_merge() {
    let (tr, cfg, ls, mut prov) = substrate();
    let msgs: HashSet<(u32, u32)> = tr.message_edges().map(|e| (e.from.0, e.to.0)).collect();
    let n = tr.tasks.len() as u32;
    let (a, b) = (0..n)
        .flat_map(|a| (0..n).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && !msgs.contains(&(a, b)))
        .expect("some unconnected task pair exists");
    prov.records.push(MergeRecord {
        rule: ProvenanceRule::DependencyMerge,
        a: TaskId(a),
        b: TaskId(b),
        timed: false,
    });
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A002"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a002_out_of_range_task_id() {
    let (tr, cfg, ls, mut prov) = substrate();
    prov.records.push(MergeRecord {
        rule: ProvenanceRule::LeapMerge,
        a: TaskId(tr.tasks.len() as u32),
        b: TaskId(0),
        timed: false,
    });
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A002"), "got {:?}", codes(&report));
}

#[test]
fn a003_union_without_shared_phase() {
    let (tr, cfg, ls, mut prov) = substrate();
    let phases = task_phases(&tr, &ls);
    let n = tr.tasks.len();
    let pair = (0..n)
        .flat_map(|a| (0..n).map(move |b| (a, b)))
        .find(|&(a, b)| {
            a != b
                && !phases[a].is_empty()
                && !phases[b].is_empty()
                && phases[a].iter().all(|p| !phases[b].contains(p))
        })
        .expect("substrate has phase-disjoint task pairs");
    prov.records.push(MergeRecord {
        rule: ProvenanceRule::LeapMerge,
        a: TaskId(pair.0 as u32),
        b: TaskId(pair.1 as u32),
        timed: false,
    });
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A003"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a004_planted_phase_cycle() {
    let (tr, cfg, mut ls, prov) = substrate();
    let (p, s) = ls
        .phase_succs
        .iter()
        .enumerate()
        .find_map(|(p, ss)| ss.first().map(|&s| (p as u32, s)))
        .expect("substrate has phase edges");
    // Close the 2-cycle s -> p against the existing p -> s.
    ls.phase_succs[s as usize].push(p);
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A004"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a005_time_witness_contradiction() {
    let (tr, cfg, ls, mut prov) = substrate();
    // Earliest/latest event time per task.
    let range = |t: &lsr_trace::TaskRec| {
        let times: Vec<_> = t.events().map(|e| tr.events[e.index()].time).collect();
        times.iter().min().copied().zip(times.iter().max().copied())
    };
    let late = tr
        .tasks
        .iter()
        .filter_map(|t| range(t).map(|(lo, _)| (t.id, lo)))
        .max_by_key(|&(_, lo)| lo)
        .expect("tasks have events");
    let early = tr
        .tasks
        .iter()
        .filter_map(|t| range(t).map(|(_, hi)| (t.id, hi)))
        .min_by_key(|&(_, hi)| hi)
        .expect("tasks have events");
    assert!(late.1 > early.1, "substrate spans time");
    // Record claims `late` was time-witnessed as before `early`.
    prov.records.push(MergeRecord {
        rule: ProvenanceRule::OrderingEdge,
        a: late.0,
        b: early.0,
        timed: true,
    });
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A005"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a006_step_table_truncated() {
    let (tr, cfg, mut ls, prov) = substrate();
    ls.step.pop();
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A006"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a006_step_identity_broken() {
    let (tr, cfg, mut ls, prov) = substrate();
    let e = (0..tr.events.len())
        .find(|&e| ls.phase_of_event[e] < ls.phases.len() as u32)
        .expect("some event has a phase");
    ls.step[e] += 1;
    let report = audit(&tr, &cfg, &prov, &ls, AuditOptions::default());
    assert!(codes(&report).contains(&"A006"), "got {:?}", codes(&report));
    assert!(!report.is_certified());
}

#[test]
fn a007_truncation_reported_and_deterministic() {
    let (tr, cfg, mut ls, prov) = substrate();
    for s in ls.step.iter_mut() {
        *s += 1; // break the step identity for every event
    }
    let run = || audit(&tr, &cfg, &prov, &ls, AuditOptions { limit: 3 });
    let r1 = run();
    assert_eq!(r1.diagnostics.len(), 4, "3 errors + the A007 marker");
    assert!(r1.diagnostics[..3].iter().all(|d| d.code == "A006"), "got {:?}", codes(&r1));
    let last = r1.diagnostics.last().unwrap();
    assert_eq!(last.code, "A007");
    assert_eq!(last.severity, lsr_lint::Severity::Warning);
    assert!(!r1.is_certified(), "truncated-with-errors must not certify");
    let r2 = run();
    let render = |r: &lsr_audit::AuditReport| {
        r.diagnostics.iter().map(|d| format!("{}:{}", d.code, d.message)).collect::<Vec<_>>()
    };
    assert_eq!(render(&r1), render(&r2), "truncation must be deterministic");
}

#[test]
fn verifier_with_limit_truncation_is_deterministic_and_reported() {
    let (tr, _cfg, ls, _prov) = substrate();
    let mut bad = ls.clone();
    for s in bad.step.iter_mut() {
        *s += 1; // every event now violates the global-step identity
    }
    let v = StructureVerifier::new().with_limit(5);
    let r1 = v.check_structure(&tr, &bad);
    let r2 = v.check_structure(&tr, &bad);
    assert_eq!(r1, r2, "truncated verification must be deterministic");
    assert_eq!(r1.len(), 6, "5 violations + the Truncated marker");
    assert_eq!(r1.last(), Some(&InvariantViolation::Truncated { limit: 5 }));
    assert!(r1[..5].iter().all(|v| v.code() == "S001"), "got {r1:?}");
    // The lint layer must surface the truncation as a visible S007
    // warning, never silently.
    let diags = lsr_lint::lint_structure(&tr, &bad).diagnostics;
    assert!(
        diags.iter().any(|d| d.code == "S007" && d.severity == lsr_lint::Severity::Warning),
        "lint must report verifier truncation: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}
