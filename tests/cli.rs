//! End-to-end tests of the `lsr` command-line tool, driving the real
//! binary the way a user would.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lsr(args: &[&str], dir: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lsr")).args(args).current_dir(dir).output().expect("spawn lsr")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lsr_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn help_lists_commands() {
    let dir = temp_dir("help");
    let out = lsr(&["help"], &dir);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "gen",
        "stats",
        "quality",
        "extract",
        "render",
        "metrics",
        "critical-path",
        "audit",
        "shrink",
    ] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
    // No arguments behaves like help.
    let out = lsr(&[], &dir);
    assert!(out.status.success());
}

#[test]
fn unknown_command_fails_with_message() {
    let dir = temp_dir("unknown");
    let out = lsr(&["frobnicate"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stats_quality_extract_roundtrip() {
    let dir = temp_dir("roundtrip");
    let out = lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("tasks"));
    assert!(dir.join("j.lsrtrace").exists());

    let out = lsr(&["stats", "j.lsrtrace"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("util="));

    let out = lsr(&["quality", "j.lsrtrace"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("quality score"));

    let out = lsr(&["extract", "j.lsrtrace"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("phases"));

    // Ablation flags are accepted and still verify.
    let out = lsr(&["extract", "j.lsrtrace", "--physical", "--no-sdag"], &dir);
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn render_ascii_and_svg() {
    let dir = temp_dir("render");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());

    let out = lsr(&["render", "j.lsrtrace"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("logical steps"));

    let out = lsr(&["render", "j.lsrtrace", "--view", "physical"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("physical time"));

    let out = lsr(
        &["render", "j.lsrtrace", "--format", "svg", "--metric", "diff", "--out", "j.svg"],
        &dir,
    );
    assert!(out.status.success());
    let svg = std::fs::read_to_string(dir.join("j.svg")).expect("svg written");
    assert!(svg.starts_with("<svg"));

    let out = lsr(
        &[
            "render",
            "j.lsrtrace",
            "--view",
            "physical",
            "--format",
            "svg",
            "--metric",
            "idle",
            "--out",
            "p.svg",
        ],
        &dir,
    );
    assert!(out.status.success());
    assert!(std::fs::read_to_string(dir.join("p.svg")).unwrap().starts_with("<svg"));

    let out = lsr(&["render", "j.lsrtrace", "--view", "migration", "--out", "m.svg"], &dir);
    assert!(out.status.success());
    assert!(std::fs::read_to_string(dir.join("m.svg")).unwrap().contains("<title>pe"));

    let out = lsr(&["render", "j.lsrtrace", "--format", "dot"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("digraph phases"));

    let out = lsr(&["render", "j.lsrtrace", "--metric", "bogus"], &dir);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_and_critical_path_run_on_mpi_traces() {
    let dir = temp_dir("mpi");
    assert!(lsr(&["gen", "lulesh-mpi", "--out", "l.lsrtrace"], &dir).status.success());

    let out = lsr(&["metrics", "l.lsrtrace", "--mpi"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("imbalance"));

    let out = lsr(&["critical-path", "l.lsrtrace"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("critical path:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowing_flags_restrict_the_analysis() {
    let dir = temp_dir("window");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());
    let full = lsr(&["stats", "j.lsrtrace"], &dir);
    assert!(full.status.success());
    // Analyze only the first 200 microseconds.
    let out = lsr(&["extract", "j.lsrtrace", "--from", "0", "--to", "200000"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("phases"));
    // Inverted window is a clean error.
    let out = lsr(&["extract", "j.lsrtrace", "--from", "9", "--to", "1"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exceeds"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_produces_self_contained_html() {
    let dir = temp_dir("report");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());
    let out = lsr(&["report", "j.lsrtrace", "--out", "r.html"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let html = std::fs::read_to_string(dir.join("r.html")).expect("html written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(html.contains("<svg"));
    assert!(html.contains("Imbalance per phase"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_compares_two_runs() {
    let dir = temp_dir("diff");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "a.lsrtrace"], &dir).status.success());
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "b.lsrtrace"], &dir).status.success());
    let out = lsr(&["diff", "a.lsrtrace", "b.lsrtrace"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("structurally identical"), "{text}");
    // Different programs diverge.
    assert!(lsr(&["gen", "lulesh-charm", "--out", "c.lsrtrace"], &dir).status.success());
    let out = lsr(&["diff", "a.lsrtrace", "c.lsrtrace"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("diverge"));
    // Wrong arity errors.
    let out = lsr(&["diff", "a.lsrtrace"], &dir);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn split_trace_layout_roundtrips_through_cli() {
    let dir = temp_dir("split");
    let out = lsr(&["gen", "jacobi-fig15", "--out", "run.sts"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("per-PE logs"));
    assert!(dir.join("run.sts").exists());
    assert!(dir.join("run.0.log").exists());
    assert!(dir.join("run.3.log").exists());
    let out = lsr(&["extract", "run.sts"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("phases"));
    // Split and single-file forms give identical structure summaries.
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());
    let a = stdout(&lsr(&["extract", "run.sts"], &dir));
    let b = stdout(&lsr(&["extract", "j.lsrtrace"], &dir));
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lint_passes_clean_traces_and_flags_corrupt_ones() {
    let dir = temp_dir("lint");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());

    let out = lsr(&["lint", "j.lsrtrace"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("0 error(s), 0 warning(s)"));

    // Machine-readable output.
    let out = lsr(&["lint", "j.lsrtrace", "--json", "--deny-warnings"], &dir);
    assert!(out.status.success());
    let json = stdout(&out);
    assert!(json.contains("\"errors\": 0"), "{json}");
    assert!(json.contains("\"structure_checked\": true"), "{json}");

    // Trace-only mode skips extraction.
    let out = lsr(&["lint", "j.lsrtrace", "--no-structure"], &dir);
    assert!(out.status.success());
    assert!(stdout(&out).contains("structure passes skipped"));

    // Corrupt the log (invert one task's span) and expect a nonzero
    // exit with a coded diagnostic.
    let path = dir.join("j.lsrtrace");
    let text = std::fs::read_to_string(&path).expect("read log");
    let mut swapped = false;
    let corrupt: Vec<String> = text
        .lines()
        .map(|l| {
            let mut f: Vec<&str> = l.split_whitespace().collect();
            // Lines read "TASK <id> <chare> <entry> <pe> <begin> <end> <sink>".
            if !swapped && f.first() == Some(&"TASK") && f.len() >= 8 && f[5] != f[6] {
                swapped = true;
                f.swap(5, 6);
                f.join(" ")
            } else {
                l.to_owned()
            }
        })
        .collect();
    assert!(swapped, "no task line found to corrupt");
    std::fs::write(&path, corrupt.join("\n") + "\n").expect("write corrupt log");
    let out = lsr(&["lint", "j.lsrtrace"], &dir);
    assert!(!out.status.success(), "corrupt trace must fail the lint");
    let text = stdout(&out);
    assert!(text.contains("error T"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_without_out_uses_preset_name() {
    let dir = temp_dir("gendefault");
    let out = lsr(&["gen", "divcon"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("divcon.lsrtrace").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_is_a_clean_error() {
    let dir = temp_dir("missing");
    let out = lsr(&["stats", "nope.lsrtrace"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Observability: `--profile` / `--profile-json` (docs/observability.md).

/// Validates a profile document against the schema documented in
/// docs/observability.md: schema tag, command, total, and the span /
/// counter / anomaly arrays with their required per-element keys.
fn check_profile_schema(text: &str, command: &str) {
    // Each command's characteristic top-level span ("gen" works in a
    // generate+write pair; "report" is ingest+verify+render).
    let span_name = match command {
        "gen" => "generate",
        "report" => "render",
        other => other,
    };
    let v: serde::Value = serde_json::from_str(text)
        .unwrap_or_else(|e| panic!("{command}: profile JSON parses: {e}"));
    assert_eq!(
        v.get("schema"),
        Some(&serde::Value::Str("lsr-obs-profile/2".into())),
        "{command}: schema tag"
    );
    assert_eq!(v.get("command"), Some(&serde::Value::Str(command.into())), "{command}: command");
    assert!(matches!(v.get("total_ns"), Some(serde::Value::U64(_))), "{command}: total_ns");

    let Some(serde::Value::Arr(spans)) = v.get("spans") else {
        panic!("{command}: spans must be an array")
    };
    assert!(!spans.is_empty(), "{command}: at least one span");
    for s in spans {
        assert!(matches!(s.get("name"), Some(serde::Value::Str(_))), "{command}: span name");
        assert!(
            matches!(s.get("parent"), Some(serde::Value::Null | serde::Value::U64(_))),
            "{command}: span parent is null or an index"
        );
        assert!(matches!(s.get("start_ns"), Some(serde::Value::U64(_))), "{command}: start_ns");
        assert!(
            matches!(s.get("dur_ns"), Some(serde::Value::U64(_))),
            "{command}: every span closed by exit"
        );
    }
    assert!(
        spans.iter().any(|s| s.get("name") == Some(&serde::Value::Str(span_name.into()))),
        "{command}: spans include the {span_name} span"
    );

    // Counters serialize as a name -> total map.
    let Some(serde::Value::Obj(counters)) = v.get("counters") else {
        panic!("{command}: counters must be an object")
    };
    for (name, total) in counters {
        assert!(!name.is_empty(), "{command}: counter name");
        assert!(matches!(total, serde::Value::U64(_)), "{command}: counter total");
    }
    assert!(matches!(v.get("counter_events"), Some(serde::Value::Arr(_))), "{command}: events");
    let Some(serde::Value::Arr(anoms)) = v.get("anomalies") else {
        panic!("{command}: anomalies must be an array")
    };
    assert!(anoms.is_empty(), "{command}: a healthy run records no anomalies");
}

#[test]
fn profile_flag_reports_to_stderr_only() {
    let dir = temp_dir("profile");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());

    let out = lsr(&["extract", "j.lsrtrace", "--profile"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // stdout stays exactly the normal, parseable summary...
    let plain = stdout(&lsr(&["extract", "j.lsrtrace"], &dir));
    assert_eq!(stdout(&out), plain, "--profile must not perturb stdout");
    // ...and the report lands on stderr: header, span tree, counters.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("profile: extract (lsr-obs-profile/2)"), "{err}");
    assert!(err.contains("spans:"), "{err}");
    assert!(err.contains("  ingest "), "{err}");
    assert!(err.contains("    atoms "), "ingest/extract stage spans nested: {err}");
    assert!(err.contains("counters:"), "{err}");
    assert!(err.contains("core.atoms"), "{err}");
    assert!(err.contains("ingest.bytes"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_json_to_stdout_with_dash() {
    let dir = temp_dir("profdash");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());
    let out = lsr(&["extract", "j.lsrtrace", "--profile-json", "-"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    // The JSON document is appended after the normal summary.
    let start = text.find("{\n").expect("JSON document on stdout");
    check_profile_schema(text[start..].trim(), "extract");
    std::fs::remove_dir_all(&dir).ok();
}

/// Every subcommand accepts `--profile-json FILE` and writes a document
/// that validates against the schema (ISSUE 4 acceptance criterion).
#[test]
fn every_subcommand_writes_valid_profile_json() {
    let dir = temp_dir("profall");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "a.lsrtrace"], &dir).status.success());
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "b.lsrtrace"], &dir).status.success());
    // A log with a planted parse error, for the shrink case below.
    let a = std::fs::read_to_string(dir.join("a.lsrtrace")).expect("read log");
    std::fs::write(dir.join("c.lsrtrace"), format!("{a}GARBAGE not a record\n")).expect("write");

    let cases: &[(&str, &[&str])] = &[
        ("gen", &["gen", "divcon", "--out", "d.lsrtrace"]),
        ("stats", &["stats", "a.lsrtrace"]),
        ("quality", &["quality", "a.lsrtrace"]),
        ("extract", &["extract", "a.lsrtrace"]),
        ("render", &["render", "a.lsrtrace", "--out", "r.txt"]),
        ("metrics", &["metrics", "a.lsrtrace"]),
        ("report", &["report", "a.lsrtrace", "--out", "r.html"]),
        ("diff", &["diff", "a.lsrtrace", "b.lsrtrace"]),
        ("lint", &["lint", "a.lsrtrace"]),
        ("races", &["races", "a.lsrtrace"]),
        ("critical-path", &["critical-path", "a.lsrtrace"]),
        ("audit", &["audit", "a.lsrtrace"]),
        ("shrink", &["shrink", "c.lsrtrace", "--code", "I001", "--out", "c.min.lsrtrace"]),
    ];
    for (command, base) in cases {
        let json_name = format!("{command}.profile.json");
        let mut args: Vec<&str> = base.to_vec();
        args.push("--profile-json");
        args.push(&json_name);
        let out = lsr(&args, &dir);
        assert!(
            out.status.success(),
            "{command} --profile-json failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = std::fs::read_to_string(dir.join(&json_name))
            .unwrap_or_else(|e| panic!("{command}: profile file written: {e}"));
        check_profile_schema(&text, command);
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Certificate checking and counterexample minimization (docs/audit.md).

#[test]
fn audit_certifies_clean_traces_across_configs() {
    let dir = temp_dir("audit");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());

    let out = lsr(&["audit", "j.lsrtrace"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("certificate OK"), "{text}");
    assert!(text.contains("0 error(s), 0 warning(s)"), "{text}");

    // Machine-readable form.
    let out = lsr(&["audit", "j.lsrtrace", "--json"], &dir);
    assert!(out.status.success());
    let json = stdout(&out);
    assert!(json.contains("\"certified\": true"), "{json}");
    assert!(json.contains("\"errors\": 0"), "{json}");

    // Config flags thread through to both extraction and the check:
    // the MPI preset certifies under its own flags, and the ablation
    // flags still certify (each produces a matching certificate).
    assert!(lsr(&["gen", "lulesh-mpi", "--out", "l.lsrtrace"], &dir).status.success());
    let out = lsr(&["audit", "l.lsrtrace", "--mpi"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("certificate OK"), "{}", stdout(&out));
    let out = lsr(&["audit", "j.lsrtrace", "--no-sdag", "--limit", "8"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout(&out).contains("certificate OK"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shrink_minimizes_a_planted_corruption_to_a_replayable_reproducer() {
    let dir = temp_dir("shrink");
    assert!(lsr(&["gen", "jacobi-fig15", "--out", "j.lsrtrace"], &dir).status.success());

    // Shrinking a clean trace for a code that never fires is an error.
    let out = lsr(&["shrink", "j.lsrtrace", "--code", "T005"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not fire"));

    // Invert one task's span (same corruption as the lint test).
    let path = dir.join("j.lsrtrace");
    let text = std::fs::read_to_string(&path).expect("read log");
    let mut swapped = false;
    let corrupt: Vec<String> = text
        .lines()
        .map(|l| {
            let mut f: Vec<&str> = l.split_whitespace().collect();
            if !swapped && f.first() == Some(&"TASK") && f.len() >= 8 && f[5] != f[6] {
                swapped = true;
                f.swap(5, 6);
                f.join(" ")
            } else {
                l.to_owned()
            }
        })
        .collect();
    assert!(swapped, "no task line found to corrupt");
    std::fs::write(&path, corrupt.join("\n") + "\n").expect("write corrupt log");

    let out = lsr(&["shrink", "j.lsrtrace", "--code", "T005", "--out", "min.lsrtrace"], &dir);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = stdout(&out);
    assert!(text.contains("T005 still fires"), "{text}");
    assert!(dir.join("min.lsrtrace").exists());

    // The reproducer is tiny and still triggers exactly the code.
    let out = lsr(&["lint", "min.lsrtrace"], &dir);
    assert!(!out.status.success(), "reproducer must still fail the lint");
    assert!(stdout(&out).contains("T005"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Engine selection: `lsr races --engine {clocks,dynamic}`.

/// Deprecation hygiene for the engine rebuild: on every generator
/// preset, `--engine clocks` and `--engine dynamic` produce identical
/// `--json` race reports (the engine is an implementation choice, not
/// a semantic one), the default run matches both, and a bad value is
/// rejected with the flag's vocabulary.
#[test]
fn races_engine_choice_never_changes_the_json_report() {
    let dir = temp_dir("engine");
    // Every preset with the extraction flags its app family needs.
    let presets: &[(&str, &[&str])] = &[
        ("jacobi-fig8", &[]),
        ("jacobi-fig15", &[]),
        ("lulesh-charm", &[]),
        ("lulesh-mpi", &["--mpi"]),
        ("lassen8", &[]),
        ("lassen64", &[]),
        ("lassen-mpi", &["--mpi"]),
        ("pdes", &[]),
        ("mergetree", &["--mpi", "--no-process-order"]),
        ("bt", &["--mpi"]),
        ("divcon", &[]),
    ];
    for (preset, flags) in presets {
        let file = format!("{preset}.lsrtrace");
        assert!(lsr(&["gen", preset, "--out", &file], &dir).status.success(), "{preset}");
        let mut base: Vec<&str> = vec!["races", &file, "--json"];
        base.extend_from_slice(flags);
        let default = lsr(&base, &dir);
        let mut reports = Vec::new();
        for engine in ["clocks", "dynamic"] {
            let mut args = base.clone();
            args.extend_from_slice(&["--engine", engine]);
            let out = lsr(&args, &dir);
            assert_eq!(
                out.status.code(),
                default.status.code(),
                "{preset}: --engine {engine} must not change the exit code"
            );
            reports.push(stdout(&out));
        }
        assert_eq!(reports[0], reports[1], "{preset}: engines must emit identical JSON");
        assert_eq!(reports[0], stdout(&default), "{preset}: default engine matches");
    }

    // A bad value names the accepted vocabulary.
    let out = lsr(&["races", "jacobi-fig8.lsrtrace", "--engine", "dense"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clocks") && err.contains("dynamic"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
