//! Documentation drift guard: every diagnostic code a crate can emit
//! has a row in `docs/lints.md`, and every documented code is still
//! emitted somewhere. The scan is lexical — any string literal shaped
//! like a code (`"T005"`, family letter + three digits) in any `.rs`
//! file counts as emitted — so the test errs on the side of demanding
//! documentation for codes that only tests mention.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// The diagnostic families `docs/lints.md` documents.
const FAMILIES: &[u8] = b"THSPIRADM";

/// Extracts `"X###"` literals from one source text.
fn codes_in(text: &str, out: &mut BTreeSet<String>) {
    let b = text.as_bytes();
    let mut i = 0;
    while i + 6 <= b.len() {
        if b[i] == b'"'
            && FAMILIES.contains(&b[i + 1])
            && b[i + 2].is_ascii_digit()
            && b[i + 3].is_ascii_digit()
            && b[i + 4].is_ascii_digit()
            && b[i + 5] == b'"'
        {
            out.insert(String::from_utf8_lossy(&b[i + 1..i + 5]).into_owned());
            i += 6;
        } else {
            i += 1;
        }
    }
}

/// Recursively collects code literals from every `.rs` file under `dir`.
fn scan_sources(dir: &Path, out: &mut BTreeSet<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            scan_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                codes_in(&text, out);
            }
        }
    }
}

/// A code is a row in `docs/lints.md` when it is the first cell of a
/// table line: `| T005 | ... |`.
fn documented_codes(lints_md: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in lints_md.lines() {
        let Some(rest) = line.strip_prefix('|') else { continue };
        let Some(cell) = rest.split('|').next() else { continue };
        let cell = cell.trim();
        let b = cell.as_bytes();
        if b.len() == 4 && FAMILIES.contains(&b[0]) && b[1..].iter().all(u8::is_ascii_digit) {
            out.insert(cell.to_string());
        }
    }
    out
}

/// Extracts counter names from `add("family.name"` call sites. Names
/// built with `format!` (e.g. `core.parallel.<stage>`) are invisible
/// to this scan and are documented with a placeholder row instead.
fn counters_in(text: &str, out: &mut BTreeSet<String>) {
    for (i, _) in text.match_indices("add(\"") {
        let rest = &text[i + 5..];
        let Some(end) = rest.find('"') else { continue };
        let name = &rest[..end];
        if name.contains('.')
            && name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'.' || b == b'_')
        {
            out.insert(name.to_string());
        }
    }
}

/// Recursively collects counter-name literals from `.rs` files.
fn scan_counters(dir: &Path, out: &mut BTreeSet<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            scan_counters(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                counters_in(&text, out);
            }
        }
    }
}

/// Every counter the pipeline increments has a reference-page mention:
/// `docs/observability.md` carries the inventory table, `docs/audit.md`
/// documents the audit/shrink counters alongside their subcommands.
#[test]
fn every_emitted_counter_is_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut emitted = BTreeSet::new();
    for dir in ["src", "crates"] {
        scan_counters(&root.join(dir), &mut emitted);
    }
    // The fuzz sweep and happened-before engine counters must be part
    // of the scan (guards both the scanner and the instrumentation
    // against silent renames).
    for name in [
        "fuzz.scenarios",
        "fuzz.motifs",
        "fuzz.traces",
        "fuzz.tasks",
        "fuzz.msgs",
        "fuzz.failures",
        "fuzz.exported",
        "fuzz.shrunk",
        "lint.hb.queries",
        "lint.hb.bytes",
        "lint.hb.clock_entries",
        "lint.hb.segments",
        "lint.hb.interval_entries",
    ] {
        assert!(emitted.contains(name), "counter {name} is no longer incremented anywhere");
    }
    assert!(emitted.len() >= 20, "counter scan looks broken: only found {emitted:?}");

    let docs: String =
        ["docs/observability.md", "docs/audit.md", "docs/analyze.md", "docs/model.md"]
            .iter()
            .map(|p| fs::read_to_string(root.join(p)).unwrap_or_else(|e| panic!("{p}: {e}")))
            .collect();
    // The inventory table groups siblings (`core.edges.inferred` /
    // `.ordering`), uses `<stage>` placeholders, and `family.*` globs;
    // accept those spellings alongside the literal name.
    let documented = |name: &str| -> bool {
        if docs.contains(name) {
            return true;
        }
        if let Some((parent, last)) = name.rsplit_once('.') {
            if docs.contains(parent)
                && (docs.contains(&format!(".{last}")) || docs.contains(&format!("{parent}.<")))
            {
                return true;
            }
        }
        let family = name.split('.').next().unwrap_or(name);
        docs.contains(&format!("{family}.*"))
    };
    let undocumented: Vec<&String> = emitted.iter().filter(|n| !documented(n)).collect();
    assert!(
        undocumented.is_empty(),
        "counters incremented in source but absent from the docs/ reference pages: {undocumented:?}"
    );
}

#[test]
fn every_emitted_code_is_documented_and_vice_versa() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut emitted = BTreeSet::new();
    for dir in ["src", "crates", "tests", "examples"] {
        scan_sources(&root.join(dir), &mut emitted);
    }
    assert!(emitted.len() >= 40, "source scan looks broken: only found {emitted:?}");

    let lints_md =
        fs::read_to_string(root.join("docs/lints.md")).expect("docs/lints.md must exist");
    let documented = documented_codes(&lints_md);

    let undocumented: Vec<&String> = emitted.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "codes emitted in source but missing from docs/lints.md: {undocumented:?}"
    );
    let stale: Vec<&String> = documented.difference(&emitted).collect();
    assert!(stale.is_empty(), "codes documented in docs/lints.md but emitted nowhere: {stale:?}");
}
