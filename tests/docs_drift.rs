//! Documentation drift guard: every diagnostic code a crate can emit
//! has a row in `docs/lints.md`, and every documented code is still
//! emitted somewhere. The scan is lexical — any string literal shaped
//! like a code (`"T005"`, family letter + three digits) in any `.rs`
//! file counts as emitted — so the test errs on the side of demanding
//! documentation for codes that only tests mention.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// The diagnostic families `docs/lints.md` documents.
const FAMILIES: &[u8] = b"THSPIRADM";

/// Extracts `"X###"` literals from one source text.
fn codes_in(text: &str, out: &mut BTreeSet<String>) {
    let b = text.as_bytes();
    let mut i = 0;
    while i + 6 <= b.len() {
        if b[i] == b'"'
            && FAMILIES.contains(&b[i + 1])
            && b[i + 2].is_ascii_digit()
            && b[i + 3].is_ascii_digit()
            && b[i + 4].is_ascii_digit()
            && b[i + 5] == b'"'
        {
            out.insert(String::from_utf8_lossy(&b[i + 1..i + 5]).into_owned());
            i += 6;
        } else {
            i += 1;
        }
    }
}

/// Recursively collects code literals from every `.rs` file under `dir`.
fn scan_sources(dir: &Path, out: &mut BTreeSet<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            scan_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                codes_in(&text, out);
            }
        }
    }
}

/// A code is a row in `docs/lints.md` when it is the first cell of a
/// table line: `| T005 | ... |`.
fn documented_codes(lints_md: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in lints_md.lines() {
        let Some(rest) = line.strip_prefix('|') else { continue };
        let Some(cell) = rest.split('|').next() else { continue };
        let cell = cell.trim();
        let b = cell.as_bytes();
        if b.len() == 4 && FAMILIES.contains(&b[0]) && b[1..].iter().all(u8::is_ascii_digit) {
            out.insert(cell.to_string());
        }
    }
    out
}

#[test]
fn every_emitted_code_is_documented_and_vice_versa() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut emitted = BTreeSet::new();
    for dir in ["src", "crates", "tests", "examples"] {
        scan_sources(&root.join(dir), &mut emitted);
    }
    assert!(emitted.len() >= 40, "source scan looks broken: only found {emitted:?}");

    let lints_md =
        fs::read_to_string(root.join("docs/lints.md")).expect("docs/lints.md must exist");
    let documented = documented_codes(&lints_md);

    let undocumented: Vec<&String> = emitted.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "codes emitted in source but missing from docs/lints.md: {undocumented:?}"
    );
    let stale: Vec<&String> = documented.difference(&emitted).collect();
    assert!(stale.is_empty(), "codes documented in docs/lints.md but emitted nowhere: {stale:?}");
}
