//! Property tests for the `lsr-flow` reachability oracle and its
//! clients.
//!
//! Three agreements are checked on arbitrary inputs, not just the
//! shapes the proxy apps produce:
//!
//! * the chain-label [`ScheduleOracle`] answers exactly like the
//!   sparse-clock [`HbIndex`] over the schedule relation — two
//!   independently engineered indexes of the same partial order;
//! * dropping every D002-redundant edge (the transitive reduction)
//!   preserves the reachability relation of a DAG;
//! * the pipeline's iterative SCC ([`DiGraph::sccs`]) and the audit
//!   crate's Tarjan agree on the component partition of any digraph.

mod support;

use lsr::core::graph::DiGraph;
use lsr::flow::{FlowGraph, ReachOracle};
use lsr::lint::{HbIndex, HbQuery, ScheduleOracle};
use lsr::trace::{TaskId, Trace};
use proptest::prelude::*;

/// Asserts the two schedule indexes agree on every pair (small traces)
/// or a deterministic sample of pairs (large ones).
fn assert_indexes_agree(name: &str, tr: &Trace) {
    let ix = tr.index();
    let hb = HbIndex::build(tr, &ix);
    assert!(hb.cycle().is_empty(), "{name}: schedule must be acyclic");
    let oracle = ScheduleOracle::build(tr, &ix)
        .unwrap_or_else(|| panic!("{name}: oracle must build on an acyclic schedule"));
    let n = tr.tasks.len();
    let stride = (n / 64).max(1); // full cross-product on small traces
    for a in (0..n).step_by(stride) {
        for b in (0..n).step_by(stride) {
            let (ta, tb) = (TaskId(a as u32), TaskId(b as u32));
            assert_eq!(
                hb.happens_before(ta, tb),
                oracle.ordered_before(ta, tb),
                "{name}: {ta:?} -> {tb:?}"
            );
        }
    }
}

#[test]
fn schedule_oracle_matches_hb_index_on_presets() {
    use lsr::apps::{
        bt_mpi, divcon_charm, jacobi2d, lassen_charm, lulesh_charm, lulesh_mpi, mergetree_mpi,
        pdes_charm, BtParams, DivConParams, JacobiParams, LassenParams, LuleshParams,
        MergeTreeParams, PdesParams,
    };
    let cases: Vec<(&str, Trace)> = vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8())),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15())),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm())),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi())),
        ("lassen8", lassen_charm(&LassenParams::chares8())),
        ("pdes", pdes_charm(&PdesParams::fig24())),
        ("mergetree", mergetree_mpi(&MergeTreeParams::small())),
        ("bt", bt_mpi(&BtParams::fig1())),
        ("divcon", divcon_charm(&DivConParams::small())),
    ];
    for (name, tr) in cases {
        assert_indexes_agree(name, &tr);
    }
}

/// A random DAG over `n` nodes: every candidate edge goes up (`u < v`),
/// picked by a byte tape.
fn dag_from_tape(n: usize, tape: &[u8]) -> Vec<(u32, u32)> {
    tape.iter()
        .enumerate()
        .map(|(i, &b)| {
            let u = (i + b as usize) % n.max(2);
            let v = u + 1 + (b as usize % (n - u).max(2));
            (u as u32, (v as u32).min(n as u32 - 1))
        })
        .filter(|&(u, v)| u < v)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two schedule indexes agree on arbitrary tape-generated
    /// workloads (unmatched messages, broadcasts, runtime chares).
    #[test]
    fn schedule_oracle_matches_hb_index_on_random_traces(
        pes in 1u32..5,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..250),
    ) {
        let tr = support::trace_from_tape(pes, chares, &tape);
        assert_indexes_agree("tape", &tr);
    }

    /// The oracle agrees with a brute-force DFS closure on random DAGs.
    #[test]
    fn oracle_matches_dfs_on_random_dags(
        n in 2usize..28,
        tape in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let edges = dag_from_tape(n, &tape);
        let g = FlowGraph::from_edges(n, edges.iter().copied());
        let oracle = ReachOracle::build(&g).expect("u < v edges form a DAG");
        let closure = dfs_closure(n, &g.succs);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    oracle.strictly_reaches(u, v),
                    u != v && closure[u as usize][v as usize],
                    "{} -> {}", u, v
                );
            }
        }
    }

    /// Deleting every transitively implied edge (D002's predicate,
    /// minus the chare-witness refinement) leaves the reachability
    /// relation intact: the reduction is conservative by construction.
    #[test]
    fn transitive_reduction_preserves_reachability(
        n in 2usize..28,
        tape in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let edges = dag_from_tape(n, &tape);
        let g = FlowGraph::from_edges(n, edges.iter().copied());
        let oracle = ReachOracle::build(&g).expect("u < v edges form a DAG");
        let kept: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| g.succs[u as usize].iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| {
                !g.succs[u as usize].iter().any(|&w| w != v && oracle.reaches(w, v))
            })
            .collect();
        let reduced = FlowGraph::from_edges(n, kept.iter().copied());
        let reduced_oracle = ReachOracle::build(&reduced).expect("subgraph of a DAG");
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(
                    oracle.strictly_reaches(u, v),
                    reduced_oracle.strictly_reaches(u, v),
                    "{} -> {} after dropping {} edge(s)",
                    u, v, g.edge_count() - kept.len()
                );
            }
        }
    }

    /// The pipeline's iterative SCC and the audit crate's Tarjan
    /// produce the same partition (up to component renaming) on
    /// arbitrary digraphs — cycles, self-loops, and multi-edges
    /// included.
    #[test]
    fn core_and_audit_sccs_agree(
        n in 1usize..24,
        raw in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..100),
    ) {
        let edges: Vec<(u32, u32)> =
            raw.iter().map(|&(a, b)| ((a as usize % n) as u32, (b as usize % n) as u32)).collect();
        let dig = DiGraph::from_edges(n, edges.iter().copied());
        let (core_comp, core_count) = dig.sccs();
        let audit_comp = lsr::audit::graph::sccs(n, &dig.succs);
        let audit_count = audit_comp.iter().map(|&c| c + 1).max().unwrap_or(0) as usize;
        prop_assert_eq!(core_count, audit_count, "component counts differ");
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    core_comp[i] == core_comp[j],
                    audit_comp[i] == audit_comp[j],
                    "partition disagrees at ({}, {})", i, j
                );
            }
        }
    }
}

/// Reference reachability: one DFS per source.
fn dfs_closure(n: usize, succs: &[Vec<u32>]) -> Vec<Vec<bool>> {
    let mut reach = vec![vec![false; n]; n];
    for (s, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![s as u32];
        row[s] = true;
        while let Some(u) = stack.pop() {
            for &v in &succs[u as usize] {
                if !row[v as usize] {
                    row[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    reach
}
