//! Planted-mutation tests over fuzzer-generated traces: one structural
//! corruption per motif family, each tripping a specific existing
//! diagnostic that the clean emission provably does not raise, and each
//! reproducer ddmin-minimized by at least 80% with the code still
//! firing.
//!
//! Family coverage (backend chosen where the corruption is expressible):
//! halo → M001 (zeroed neighbor radius), tree → M002 (understated
//! collective arity), all-to-all → M003 (zeroed declared volumes),
//! migration → M004 (appended unexercised signature), wavefront → M005
//! (swapped SDAG serials), work stealing → R004 (unmatched steal
//! request under causal concurrency).

use lsr_audit::{shrink_log, ShrinkOptions};
use lsr_core::{try_extract, Config};
use lsr_fuzz::{emit, Backend, Motif, Scenario};
use lsr_lint::{analyze_races, model_diagnostics};
use lsr_model::SkeletonModel;
use lsr_trace::logfmt::{read_log_salvage, to_log_string};

fn scenario(seed: u64, x: u32, y: u32, rounds: u32, motifs: Vec<Motif>) -> Scenario {
    Scenario { id: 0, seed, x, y, pes: 3, rounds, motifs }
}

fn log_of(sc: &Scenario, backend: Backend) -> String {
    to_log_string(&emit(sc, backend))
}

/// All `M` codes (any severity) the skeleton model raises on `log`.
fn model_codes(log: &str, cfg: &Config) -> Vec<String> {
    let (tr, _) = read_log_salvage(log.as_bytes()).expect("log parses");
    let cfg = cfg.clone().with_verify(false);
    let ls = try_extract(&tr, &cfg).expect("log extracts");
    let model = SkeletonModel::build(&tr.declarations());
    let report = lsr_model::check(&model, &tr, &ls);
    model_diagnostics(&report, 256).iter().map(|d| d.code.to_string()).collect()
}

/// All `R` codes the race analysis raises on `log`.
fn race_codes(log: &str, cfg: &Config) -> Vec<String> {
    let (tr, _) = read_log_salvage(log.as_bytes()).expect("log parses");
    let cfg = cfg.clone().with_verify(false);
    let report = analyze_races(&tr, &cfg, 256).expect("acyclic");
    report.diagnostics.iter().map(|d| d.code.to_string()).collect()
}

/// Rewrites each record line's whitespace-split fields through `f`
/// (the header passes through untouched).
fn map_lines(log: &str, mut f: impl FnMut(&mut Vec<String>)) -> String {
    let out: Vec<String> = log
        .lines()
        .map(|l| {
            let mut fields: Vec<String> = l.split_whitespace().map(str::to_owned).collect();
            if fields.first().map(String::as_str) != Some("LSRTRACE") {
                f(&mut fields);
            }
            fields.join(" ")
        })
        .collect();
    out.join("\n") + "\n"
}

/// The entry id declared under `name`, read off the ENTRY records.
fn entry_id(log: &str, name: &str) -> String {
    log.lines()
        .filter_map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            (f.first() == Some(&"ENTRY") && f.get(4) == Some(&name)).then(|| f[1].to_owned())
        })
        .next()
        .unwrap_or_else(|| panic!("no ENTRY named {name}"))
}

/// The planted-mutation contract: the baseline is clean of `code`, the
/// mutation trips it, and the shrunk reproducer both reduces >= 80%
/// and still fires (re-checked through the same oracle, not the
/// shrinker's probe).
fn assert_mutation(
    baseline: &str,
    mutated: &str,
    code: &str,
    cfg: &Config,
    codes_of: fn(&str, &Config) -> Vec<String>,
) {
    assert_ne!(baseline, mutated, "{code}: the mutation must change the log");
    assert!(
        !codes_of(baseline, cfg).iter().any(|c| c == code),
        "{code} already fires on the clean emission"
    );
    assert!(
        codes_of(mutated, cfg).iter().any(|c| c == code),
        "the planted corruption must trip {code}"
    );
    let opts = ShrinkOptions { config: cfg.clone(), ..ShrinkOptions::default() };
    let r = shrink_log(mutated, code, &opts).unwrap_or_else(|e| panic!("{code} must shrink: {e}"));
    assert!(
        r.reduction() >= 0.8,
        "{code}: expected >= 80% reduction, got {:.1}% ({} -> {} records)",
        r.reduction() * 100.0,
        r.original_records,
        r.final_records
    );
    assert!(
        codes_of(&r.log, cfg).iter().any(|c| c == code),
        "{code} must still fire on the reproducer:\n{}",
        r.log
    );
}

/// Halo family: zeroing the declared neighbor radius unadmits every
/// exchange message (pattern misfit ⇒ M001 UnadmittedMessage).
#[test]
fn halo_radius_mutation_trips_m001() {
    let log = log_of(&scenario(11, 3, 2, 1, vec![Motif::Halo]), Backend::Charm);
    let mut done = false;
    let mutated = map_lines(&log, |f| {
        if !done && f[0] == "SIG" && f[6].starts_with("near:") && f[6] != "near:0" {
            f[6] = "near:0".into();
            done = true;
        }
    });
    assert!(done, "halo emission must declare a near signature");
    assert_mutation(&log, &mutated, "M001", &Config::charm(), model_codes);
}

/// Tree family: understating the declared collective arity makes the
/// observed reduction fan-in exceed the shape bound (M002). Needs
/// enough ranks that some rank has two children *and* a parent.
#[test]
fn tree_arity_mutation_trips_m002() {
    let log = log_of(&scenario(4, 3, 2, 1, vec![Motif::Tree]), Backend::Mpi);
    let mut done = false;
    let mutated = map_lines(&log, |f| {
        if f[0] == "SIG" && f[6] == "tree:2" {
            f[6] = "tree:1".into();
            done = true;
        }
    });
    assert!(done, "tree emission must declare a tree:2 signature");
    assert_mutation(&log, &mutated, "M002", &Config::mpi(), model_codes);
}

/// All-to-all family: zeroing every declared volume collapses the
/// phase-budget interval to [0, 0], so any traffic overruns it (M003).
#[test]
fn alltoall_volume_mutation_trips_m003() {
    let log = log_of(&scenario(11, 2, 2, 1, vec![Motif::AllToAll]), Backend::Charm);
    let mutated = map_lines(&log, |f| {
        if f[0] == "SIG" {
            let last = f.len() - 1;
            f[last] = "0".into();
        }
    });
    assert_mutation(&log, &mutated, "M003", &Config::charm(), model_codes);
}

/// Migration family: appending a well-formed signature over a path the
/// program never exercises (advance → boot) leaves it with zero
/// matched messages (M004 UnobservedPath).
#[test]
fn migration_phantom_sig_mutation_trips_m004() {
    let log = log_of(&scenario(11, 2, 2, 1, vec![Motif::Migration]), Backend::Charm);
    let nsigs = log.lines().filter(|l| l.starts_with("SIG ")).count();
    // The application array id, read off the declared migration sig
    // (runtime-derived tree sigs live on the runtime array).
    let app = log
        .lines()
        .filter_map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            (f.first() == Some(&"SIG") && f[6].starts_with("near:")).then(|| f[2].to_owned())
        })
        .next()
        .expect("migration declares a near signature");
    let advance = entry_id(&log, "advance");
    let boot = entry_id(&log, "boot");
    let mutated = format!("{log}SIG {nsigs} {app} {advance} {app} {boot} any 5\n");
    assert_mutation(&log, &mutated, "M004", &Config::charm(), model_codes);
}

/// Wavefront family: swapping the SDAG serials of two recurring sweep
/// entries makes the per-chare serial cycle wrap to two different
/// targets (M005 PeriodicityMismatch). Needs >= 3 recurring serials
/// and >= 2 rounds so the cycle is observable.
#[test]
fn wavefront_serial_swap_mutation_trips_m005() {
    let log = log_of(&scenario(11, 2, 2, 2, vec![Motif::Wavefront; 4]), Backend::Charm);
    let m1 = entry_id(&log, "m1.wf");
    let m2 = entry_id(&log, "m2.wf");
    let mutated = map_lines(&log, |f| {
        if f[0] == "ENTRY" {
            if f[1] == m1 {
                f[2] = "4".into();
            } else if f[1] == m2 {
                f[2] = "3".into();
            }
        }
    });
    assert_mutation(&log, &mutated, "M005", &Config::charm(), model_codes);
}

/// Work-stealing family: erasing the match of one steal request leaves
/// its grant causally concurrent with an untriggered receive in the
/// same chare stream (R004 UntracedUnordered). Only expressible on the
/// charm backend — MPI rank streams are totally ordered by program
/// order, so the pair would never be concurrent there.
#[test]
fn steal_unmatched_request_mutation_trips_r004() {
    let log = log_of(&scenario(11, 2, 2, 1, vec![Motif::Steal]), Backend::Charm);
    let req = entry_id(&log, "m0.req");
    // First pass: find the first steal-request message and its id.
    let msg_id = log
        .lines()
        .filter_map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            (f.first() == Some(&"MSG") && f[4] == req).then(|| f[1].to_owned())
        })
        .next()
        .expect("steal emission sends request messages");
    // Second pass: blank the match on both sides (message and event).
    let mutated = map_lines(&log, |f| {
        if f[0] == "MSG" && f[1] == msg_id {
            f[6] = "-".into();
            f[7] = "-".into();
        } else if f[0] == "RECV" && f[4] == msg_id {
            f[4] = "-".into();
        }
    });
    assert_mutation(&log, &mutated, "R004", &Config::charm(), race_codes);
}
