//! Property tests for the scenario fuzzer (`lsr-fuzz`): generation and
//! emission are byte-deterministic across file layouts, every generated
//! trace passes the strict validator, and the salvage reader's
//! integrity contract holds when fuzzed scenarios — not just the
//! synthetic tag garbage of `crates/trace/tests/parser_fuzz.rs` — are
//! the corpus being corrupted. Record-line dropping below is exactly
//! the probe shape `lsr shrink` uses, so these properties pin the
//! salvage guarantees ddmin minimization depends on.

use lsr_fuzz::{emit, Backend, Motif, Scenario};
use lsr_trace::logfmt::{from_log_str, read_log_salvage, to_log_string};
use lsr_trace::{multifile, validate, EventKind, Trace};
use proptest::prelude::*;

/// Every id a salvaged trace hands out must resolve, and every matched
/// message must point at a receive task that still has its sink event
/// (the degraded-link contract: when salvage drops a task's sink, the
/// message match degrades with it).
fn assert_salvage_intact(tr: &Trace) {
    let (nc, ne, nt, nev, nm) =
        (tr.chares.len(), tr.entries.len(), tr.tasks.len(), tr.events.len(), tr.msgs.len());
    for (i, t) in tr.tasks.iter().enumerate() {
        assert_eq!(t.id.0 as usize, i, "task ids dense");
        assert!((t.chare.0 as usize) < nc, "task -> chare");
        assert!((t.entry.0 as usize) < ne, "task -> entry");
        if let Some(s) = t.sink {
            assert!((s.0 as usize) < nev, "task sink -> event");
        }
        for s in &t.sends {
            assert!((s.0 as usize) < nev, "task sends -> event");
        }
    }
    for (i, ev) in tr.events.iter().enumerate() {
        assert_eq!(ev.id.0 as usize, i, "event ids dense");
        assert!((ev.task.0 as usize) < nt, "event -> task");
        match ev.kind {
            EventKind::Send { msg } => assert!((msg.0 as usize) < nm, "send -> msg"),
            EventKind::Recv { msg } => {
                if let Some(m) = msg {
                    assert!((m.0 as usize) < nm, "recv -> msg");
                }
            }
        }
    }
    for (i, m) in tr.msgs.iter().enumerate() {
        assert_eq!(m.id.0 as usize, i, "msg ids dense");
        assert!((m.send_event.0 as usize) < nev, "msg -> send event");
        assert!((m.dst_chare.0 as usize) < nc, "msg -> dst chare");
        assert!((m.dst_entry.0 as usize) < ne, "msg -> dst entry");
        if let Some(t) = m.recv_task {
            assert!((t.0 as usize) < nt, "msg -> recv task");
            assert!(
                tr.task(t).sink.is_some(),
                "matched msg {i} points at task {} with no sink event",
                t.0
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same `(master, id)` ⇒ byte-identical logfmt output, twice over,
    /// on both backends: the determinism contract the committed-
    /// reproducer workflow stands on.
    #[test]
    fn emission_is_byte_deterministic(master in any::<u64>(), id in 0u32..64) {
        let sc = Scenario::generate(master, id, &Motif::ALL);
        for b in Backend::ALL {
            let first = to_log_string(&emit(&sc, b));
            let second = to_log_string(&emit(&sc, b));
            prop_assert_eq!(first, second, "{} re-emission differs for {:?}", b, sc);
        }
    }

    /// Every generated trace passes the strict validator and survives
    /// both serializations — the single document and the
    /// Projections-style split layout — with byte-identical logfmt.
    #[test]
    fn generated_traces_are_strictly_valid_in_both_layouts(
        master in any::<u64>(),
        id in 0u32..64,
    ) {
        let sc = Scenario::generate(master, id, &Motif::ALL);
        let dir = std::env::temp_dir()
            .join(format!("lsr_fuzz_props_{}_{master:x}_{id}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for b in Backend::ALL {
            let tr = emit(&sc, b);
            prop_assert!(validate(&tr).is_ok(), "{b}: {:?}", validate(&tr));

            // Single document: strict round trip.
            let text = to_log_string(&tr);
            let back = from_log_str(&text).expect("strict parse");
            prop_assert_eq!(&tr, &back, "{} single-document roundtrip", b);

            // Split layout parses to the same trace and re-serializes
            // to the same bytes as the single document.
            let base = format!("fz{}", b);
            multifile::write_split(&tr, &dir, &base).expect("write_split");
            let back = multifile::read_split(&dir, &base).expect("read_split");
            prop_assert_eq!(&tr, &back, "{} split roundtrip", b);
            prop_assert_eq!(
                to_log_string(&back),
                text,
                "{} split layout re-serializes differently",
                b
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Dropping an arbitrary subset of record lines from a fuzzed log —
    /// the exact probe `lsr shrink` runs thousands of times — must
    /// always salvage to a referentially intact trace with every
    /// surviving message match still resolvable to a sunk task.
    #[test]
    fn salvage_stays_intact_when_record_lines_drop(
        master in any::<u64>(),
        id in 0u32..16,
        mask in proptest::collection::vec(any::<bool>(), 1..64),
        charm in any::<bool>(),
    ) {
        let sc = Scenario::generate(master, id, &Motif::ALL);
        let b = if charm { Backend::Charm } else { Backend::Mpi };
        let text = to_log_string(&emit(&sc, b));
        let mut lines = text.lines();
        let header = lines.next().unwrap().to_owned();
        let kept: Vec<&str> = lines
            .enumerate()
            .filter(|(i, _)| mask[i % mask.len()])
            .map(|(_, l)| l)
            .collect();
        let doc = format!("{header}\n{}\n", kept.join("\n"));
        let (tr, _rep) = read_log_salvage(doc.as_bytes()).expect("salvage never fails");
        assert_salvage_intact(&tr);
    }

    /// Single-byte corruption of a fuzzed log: strict parsing either
    /// fails cleanly or yields a valid trace, and salvage always yields
    /// an intact one.
    #[test]
    fn single_byte_corruption_of_fuzzed_logs_is_handled(
        master in any::<u64>(),
        id in 0u32..16,
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let sc = Scenario::generate(master, id, &Motif::ALL);
        let text = to_log_string(&emit(&sc, Backend::Charm));
        let mut bytes = text.into_bytes();
        let i = pos % bytes.len();
        bytes[i] = byte;
        if let Ok(s) = String::from_utf8(bytes.clone()) {
            if let Ok(tr) = from_log_str(&s) {
                prop_assert!(
                    validate(&tr).is_ok(),
                    "anything the strict parser accepts must validate"
                );
            }
        }
        if let Ok((tr, _)) = read_log_salvage(&bytes[..]) {
            assert_salvage_intact(&tr);
        }
    }
}

/// The committed `.proptest-regressions` corpus must actually arm the
/// replay shim: `persisted_seeds` resolves this file's sibling and the
/// `proptest!` macro replays each seed before the novel cases, so an
/// empty result would silently drop the regression coverage.
#[test]
fn persisted_regression_seeds_replay() {
    let seeds = proptest::persisted_seeds(file!());
    assert!(
        !seeds.is_empty(),
        "tests/fuzz_properties.proptest-regressions must contain at least one `cc` seed"
    );
    // Folding is deterministic: the same file yields the same seeds.
    assert_eq!(seeds, proptest::persisted_seeds(file!()));
}
