//! Golden snapshots of the recovered structure for committed seeds.
//!
//! The invariant checks (`verify`) catch *inconsistent* structures;
//! these tests catch *silently different but consistent* ones — a
//! pipeline change that shifts phase boundaries or step assignments
//! without breaking any invariant. The proxies use fixed seeds, so
//! these values are fully deterministic; if you change the pipeline or
//! the simulators deliberately, re-derive the constants and say so in
//! the commit.

use lsr_apps::*;
use lsr_core::{extract, Config};

struct Golden {
    name: &'static str,
    phases: usize,
    app_phases: usize,
    steps: u64,
    tasks: usize,
    msgs: usize,
}

fn check(g: &Golden, trace: &lsr_trace::Trace, cfg: &Config) {
    let ls = extract(trace, cfg);
    ls.verify(trace).unwrap_or_else(|e| panic!("{}: {e}", g.name));
    let got = Golden {
        name: g.name,
        phases: ls.num_phases(),
        app_phases: ls.app_phase_count(),
        steps: ls.max_step() + 1,
        tasks: trace.tasks.len(),
        msgs: trace.msgs.len(),
    };
    assert_eq!(
        (got.phases, got.app_phases, got.steps, got.tasks, got.msgs),
        (g.phases, g.app_phases, g.steps, g.tasks, g.msgs),
        "{}: structure drifted from the golden snapshot \
         (phases, app, steps, tasks, msgs)",
        g.name
    );
}

#[test]
fn jacobi_fig15_structure_is_stable() {
    let trace = jacobi2d(&JacobiParams::fig15());
    check(
        &Golden {
            name: "jacobi-fig15",
            phases: 12,
            app_phases: 4,
            steps: 70,
            tasks: 265,
            msgs: 249,
        },
        &trace,
        &Config::charm(),
    );
}

#[test]
fn lulesh_charm_structure_is_stable() {
    let trace = lulesh_charm(&LuleshParams::fig16_charm());
    check(
        &Golden {
            name: "lulesh-charm",
            phases: 10,
            app_phases: 5,
            steps: 57,
            tasks: 195,
            msgs: 171,
        },
        &trace,
        &Config::charm(),
    );
}

#[test]
fn lulesh_mpi_structure_is_stable() {
    let trace = lulesh_mpi(&LuleshParams::fig16_mpi());
    check(
        &Golden {
            name: "lulesh-mpi",
            phases: 10,
            app_phases: 10,
            steps: 78,
            tasks: 420,
            msgs: 210,
        },
        &trace,
        &Config::mpi(),
    );
}

#[test]
fn divcon_structure_is_stable() {
    let trace = divcon_charm(&DivConParams::small());
    check(
        &Golden { name: "divcon", phases: 1, app_phases: 1, steps: 20, tasks: 61, msgs: 60 },
        &trace,
        &Config::charm(),
    );
}

#[test]
fn mergetree_structure_is_stable() {
    let trace = mergetree_mpi(&MergeTreeParams::small());
    let cfg = Config::mpi().with_process_order(false);
    let ls = extract(&trace, &cfg);
    ls.verify(&trace).unwrap();
    // 32 ranks: 31 messages, level structure spans ≥ 2·log2(32) steps
    // under reordering.
    assert_eq!(trace.msgs.len(), 31);
    assert!(ls.max_step() + 1 >= 10);
}

/// Scrubs the volatile tokens out of a profile report: anything that
/// looks like a duration becomes `<T>`, any percentage becomes `<P>`.
/// Everything else — layout, span names, nesting, counter names, and
/// the deterministic counter *values* — must match exactly.
fn scrub_profile(report: &str) -> String {
    report
        .lines()
        .map(|line| {
            line.split(' ')
                .map(|tok| {
                    if tok.is_empty() {
                        return tok.to_owned();
                    }
                    let digit_led = tok.chars().next().unwrap().is_ascii_digit();
                    let is_time = digit_led
                        && (tok.ends_with("ns")
                            || tok.ends_with("µs")
                            || tok.ends_with("ms")
                            || (tok.ends_with('s') && tok.contains('.')));
                    if is_time {
                        "<T>".to_owned()
                    } else if digit_led && tok.ends_with('%') {
                        "<P>".to_owned()
                    } else {
                        tok.to_owned()
                    }
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

/// Golden snapshot of the rendered `--profile` report for the
/// jacobi-fig15 extraction. Span timings vary run to run (scrubbed to
/// `<T>`/`<P>`), but the span tree shape, stage order, and every
/// counter value are deterministic; drift here means the pipeline's
/// instrumentation changed and the snapshot must be re-derived
/// deliberately.
#[test]
fn profile_report_snapshot_is_stable() {
    let trace = jacobi2d(&JacobiParams::fig15());
    let rec = lsr_obs::Recorder::enabled();
    lsr_core::try_extract(&trace, &Config::charm().with_recorder(rec.clone())).unwrap();
    let p = rec.profile("extract").unwrap();
    let got = scrub_profile(&lsr_render::profile_report(&p));
    let want = "\
profile: extract (lsr-obs-profile/2)
total: <T>
spans:
  extract <T>  <P>
    atoms <T>  <P>
    dependency_merge <T>  <P>
    collective_merge <T>  <P>
    repair <T>  <P>
    neighbor_serial <T>  <P>
    infer <T>  <P>
    leap_resolution <T>  <P>
    enforce <T>  <P>
    ordering <T>  <P>
counters:
  core.threads            1
  core.ordering.phases    12
  core.ordering.workers   1
  core.atoms              345
  core.merges.dependency  249
  core.merges.cycle       1
  core.merges.repair      44
  core.merges.leap        39
  core.edges.inferred     79
  core.edges.enforce      5
  core.phases             12
";
    assert_eq!(
        got, want,
        "profile report drifted from the golden snapshot; if the \
         instrumentation changed deliberately, re-derive this constant"
    );
}
