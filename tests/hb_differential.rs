//! Differential suite for the two happened-before engines: the
//! epoch-clock baseline (`HbEngine::Clocks`) and the dynamic
//! partial-order engine (`HbEngine::Dynamic`) must answer every
//! reachability query identically — on every generator preset, on
//! adversarial tape-generated traces, and across a seeded `lsr-fuzz`
//! scenario sweep — and `analyze_races` must produce byte-identical
//! reports through either. The planted-corruption tests close the
//! loop: each engine corruption kind must be *caught* by this suite's
//! oracle, flipping a race verdict against the clocks baseline.

mod support;

use lsr_core::Config;
use lsr_lint::{
    analyze_races_with, analyze_races_with_index, causal_mode, HbCorruption, HbEngine, HbIndex,
    HbMode,
};
use lsr_trace::{TaskId, Trace};
use proptest::prelude::*;

/// All eleven generator presets with their CLI extraction
/// configurations (mirrors `tests/obs_properties.rs`).
fn presets() -> Vec<(&'static str, Trace, Config)> {
    use lsr_apps::*;
    let charm = Config::charm();
    let mpi = Config::mpi();
    vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8()), charm.clone()),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen8", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("lassen64", lassen_charm(&LassenParams::chares64()), charm.clone()),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2)), mpi.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi),
        ("divcon", divcon_charm(&DivConParams::small()), charm),
    ]
}

/// The modes a preset's CLI surface can reach: the schedule relation
/// (`lsr lint`) and its configuration's causal relation (`lsr races`).
fn modes(cfg: &Config) -> [HbMode; 2] {
    [HbMode::Schedule, causal_mode(cfg)]
}

/// Exhaustive agreement on one trace and mode: both engines must give
/// the same cycle witness and the same answer for *every* ordered task
/// pair — not a sampled workload.
fn assert_engines_agree(name: &str, trace: &Trace, mode: HbMode) {
    let ix = trace.index();
    let clocks = HbIndex::build_with_engine(trace, &ix, mode, HbEngine::Clocks);
    let dynamic = HbIndex::build_with_engine(trace, &ix, mode, HbEngine::Dynamic);
    assert_eq!(
        clocks.cycle(),
        dynamic.cycle(),
        "{name} {mode:?}: engines must report the same cycle witness"
    );
    let n = trace.tasks.len();
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            let (ta, tb) = (TaskId(a), TaskId(b));
            assert_eq!(
                clocks.happens_before(ta, tb),
                dynamic.happens_before(ta, tb),
                "{name} {mode:?}: engines disagree on {a} -> {b}"
            );
        }
    }
}

/// Both engines agree on every task pair of every preset, in both the
/// schedule and the causal relation.
#[test]
fn engines_agree_on_all_pairs_of_every_preset() {
    for (name, trace, cfg) in presets() {
        for mode in modes(&cfg) {
            assert_engines_agree(name, &trace, mode);
        }
    }
}

/// `analyze_races` is engine-independent on every preset: the full
/// report — diagnostics, classifications, JSON — is byte-identical.
#[test]
fn race_reports_are_identical_across_engines_on_every_preset() {
    for (name, trace, cfg) in presets() {
        let rep_c = analyze_races_with(&trace, &cfg, 1_000_000, HbEngine::Clocks)
            .unwrap_or_else(|c| panic!("{name}: cyclic: {c:?}"));
        let rep_d = analyze_races_with(&trace, &cfg, 1_000_000, HbEngine::Dynamic)
            .unwrap_or_else(|c| panic!("{name}: cyclic: {c:?}"));
        assert_eq!(rep_c.to_json(), rep_d.to_json(), "{name}: reports must be byte-identical");
        assert_eq!(rep_c.to_string(), rep_d.to_string(), "{name}");
    }
}

/// A 64-scenario `lsr-fuzz` sweep through both simulator backends:
/// engine agreement and report identity must hold on machine-generated
/// program shapes, not just the curated presets.
#[test]
fn engines_agree_across_fuzz_scenario_sweep() {
    use lsr_fuzz::{emit, Backend, Motif, Scenario};
    for id in 0..64u32 {
        let sc = Scenario::generate(0xD1FF_E4E7_0001, id, &Motif::ALL);
        for backend in Backend::ALL {
            let trace = emit(&sc, backend);
            let cfg = backend.config();
            let name = format!("scenario{id}/{backend}");
            assert_engines_agree(&name, &trace, causal_mode(&cfg));
            let rep_c = analyze_races_with(&trace, &cfg, 10_000, HbEngine::Clocks)
                .unwrap_or_else(|c| panic!("{name}: cyclic: {c:?}"));
            let rep_d = analyze_races_with(&trace, &cfg, 10_000, HbEngine::Dynamic)
                .unwrap_or_else(|c| panic!("{name}: cyclic: {c:?}"));
            assert_eq!(rep_c.to_json(), rep_d.to_json(), "{name}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine agreement on arbitrary tape-generated traces, across the
    /// schedule relation and every causal variant the configurations
    /// reach.
    #[test]
    fn engines_agree_on_arbitrary_traces(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let ix = trace.index();
        for mode in [
            HbMode::Schedule,
            HbMode::Causal { chare_order: true, sdag_order: false },
            HbMode::Causal { chare_order: false, sdag_order: true },
            HbMode::Causal { chare_order: false, sdag_order: false },
        ] {
            let clocks = HbIndex::build_with_engine(&trace, &ix, mode, HbEngine::Clocks);
            let dynamic = HbIndex::build_with_engine(&trace, &ix, mode, HbEngine::Dynamic);
            prop_assert_eq!(clocks.cycle(), dynamic.cycle());
            let n = trace.tasks.len();
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    let (ta, tb) = (TaskId(a), TaskId(b));
                    prop_assert_eq!(
                        clocks.happens_before(ta, tb),
                        dynamic.happens_before(ta, tb),
                        "{:?}: disagree on {} -> {}", mode, a, b
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Planted corruptions: each kind must flip a race verdict.
// ---------------------------------------------------------------------

/// The uncorrupted race report for a preset, computed through the
/// clocks baseline (the oracle the corrupted engine is judged against).
fn baseline_report(trace: &Trace, cfg: &Config) -> String {
    analyze_races_with(trace, cfg, 1_000_000, HbEngine::Clocks).expect("acyclic").to_json()
}

/// Runs the real race scan over a deliberately corrupted dynamic
/// index; returns its report JSON when the corruption applied.
fn corrupted_report(trace: &Trace, cfg: &Config, c: HbCorruption) -> Option<String> {
    let ix = trace.index();
    let mut hb = HbIndex::build_with_engine(trace, &ix, causal_mode(cfg), HbEngine::Dynamic);
    if !hb.corrupt_for_tests(c) {
        return None;
    }
    Some(analyze_races_with_index(trace, cfg, 1_000_000, &hb).expect("acyclic").to_json())
}

/// Finds a preset (and corruption site, when parameterized) where the
/// corruption both applies and flips the race report against the
/// clocks baseline — the differential oracle must be able to catch
/// every corruption kind, not shrug it off.
fn assert_corruption_caught(kind: &str, sites: impl Fn(&Trace) -> Vec<HbCorruption>) {
    for (name, trace, cfg) in presets() {
        let baseline = baseline_report(&trace, &cfg);
        for c in sites(&trace) {
            if let Some(report) = corrupted_report(&trace, &cfg, c) {
                if report != baseline {
                    println!("{kind}: caught on {name} via {c:?}");
                    return;
                }
            }
        }
    }
    panic!("{kind}: no preset/site where the corruption flips a race verdict");
}

/// A dropped cross-lane edge (lost exception interval) changes a
/// concurrency verdict the race scan depends on.
#[test]
fn dropped_cross_lane_edge_flips_a_race_verdict() {
    assert_corruption_caught("drop-cross-edge", |_| vec![HbCorruption::DropCrossEdge]);
}

/// Swapped forest interval labels change a reachability answer the
/// race scan depends on.
#[test]
fn swapped_labels_flip_a_race_verdict() {
    assert_corruption_caught("swap-label", |trace| {
        let n = trace.tasks.len() as u32;
        // Candidate label swaps: a window of task pairs spanning the
        // whole id range (every preset's streams cross it).
        (0..n.saturating_sub(1))
            .flat_map(|a| {
                [
                    HbCorruption::SwapLabel(TaskId(a), TaskId(a + 1)),
                    HbCorruption::SwapLabel(TaskId(a), TaskId((a + n / 2) % n)),
                ]
            })
            .collect()
    });
}

/// A stale (emptied) exception segment changes a reachability answer
/// the race scan depends on.
#[test]
fn stale_segment_flips_a_race_verdict() {
    assert_corruption_caught("stale-segment", |trace| {
        (0..trace.tasks.len() as u32).map(|t| HbCorruption::StaleSegment(TaskId(t))).collect()
    });
}
