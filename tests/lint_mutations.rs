//! Mutation tests for the `lsr-lint` pass framework: every lint code
//! must actually fire when a trace or structure is corrupted the way
//! the code describes, and no code may fire on the clean traces every
//! proxy app produces. A linter that misses planted corruption — or
//! cries wolf on healthy traces — is worse than none.

use lsr::apps::{
    bt_mpi, divcon_charm, jacobi2d, lassen_charm, lulesh_charm, lulesh_mpi, mergetree_mpi,
    pdes_charm, BtParams, DivConParams, JacobiParams, LassenParams, LuleshParams, MergeTreeParams,
    PdesParams,
};
use lsr::core::{extract, Config, StageSnapshot};
use lsr::lint::{lint_stages, lint_structure, lint_trace, LintOptions, Severity};
use lsr::trace::{
    EntryId, EventKind, Kind, PeId, TaskId, Time, Trace, TraceBuilder, ValidationError,
};

/// Collects the codes a trace-only lint run reports.
fn trace_codes(tr: &Trace) -> Vec<&'static str> {
    let opts = LintOptions { check_structure: false, ..LintOptions::default() };
    lint_trace(tr, &opts).diagnostics.iter().map(|d| d.code).collect()
}

/// A small hand-built trace exercising every record kind: two PEs, two
/// messages, a spontaneous second task on PE 0, and an idle span.
///
/// ```text
///   pe0:  t0 [0,4]  --m0(@1)--> t1 [10,12] on pe1
///                   --m1(@2)--> t2 [13,15] on pe1
///         t3 [5,6]  (spontaneous)
///   pe1:  idle [0,10]
/// ```
fn base() -> (Trace, [lsr::trace::MsgId; 2]) {
    let mut b = TraceBuilder::new(2);
    let app = b.add_array("a", Kind::Application);
    let c0 = b.add_chare(app, 0, PeId(0));
    let c1 = b.add_chare(app, 1, PeId(1));
    let e = b.add_entry("m", None);
    let t0 = b.begin_task(c0, e, PeId(0), Time(0));
    let m0 = b.record_send(t0, Time(1), c1, e);
    let m1 = b.record_send(t0, Time(2), c1, e);
    b.end_task(t0, Time(4));
    let t3 = b.begin_task(c0, e, PeId(0), Time(5));
    b.end_task(t3, Time(6));
    let t1 = b.begin_task_from(c1, e, PeId(1), Time(10), m0);
    b.end_task(t1, Time(12));
    let t2 = b.begin_task_from(c1, e, PeId(1), Time(13), m1);
    b.end_task(t2, Time(15));
    b.add_idle(PeId(1), Time(0), Time(10));
    let tr = b.build().expect("base trace is valid");
    assert!(trace_codes(&tr).is_empty(), "base must lint clean");
    (tr, [m0, m1])
}

// ---- T codes: one corruption per ValidationError variant. -----------

#[test]
fn t001_open_task_is_caught_at_build_time() {
    // An unclosed task never becomes a Trace; the builder refuses it
    // with the error the linter labels T001.
    let mut b = TraceBuilder::new(1);
    let app = b.add_array("a", Kind::Application);
    let c0 = b.add_chare(app, 0, PeId(0));
    let e = b.add_entry("m", None);
    b.begin_task(c0, e, PeId(0), Time(0));
    let err = b.build().expect_err("open task must fail the build");
    assert!(matches!(err, ValidationError::OpenTask(_)));
    let d = lsr::lint::diagnostic_for(&err);
    assert_eq!(d.code, "T001");
    assert_eq!(d.severity, Severity::Error);
}

#[test]
fn t002_absurd_pe_count() {
    let (mut tr, _) = base();
    tr.pe_count = (1 << 20) + 1;
    assert_eq!(trace_codes(&tr), ["T002"]);
}

#[test]
fn t003_id_table_mismatch() {
    let (mut tr, _) = base();
    tr.entries[0].id = EntryId(3);
    assert_eq!(trace_codes(&tr), ["T003"]);
}

#[test]
fn t004_dangling_reference() {
    let (mut tr, _) = base();
    tr.tasks[0].entry = EntryId(99);
    assert_eq!(trace_codes(&tr), ["T004"]);
}

#[test]
fn t005_negative_task_span() {
    let (mut tr, _) = base();
    tr.tasks[1].begin = Time(7); // t3 was [5,6]
    assert_eq!(trace_codes(&tr), ["T005"]);
}

#[test]
fn t006_event_outside_task() {
    let (mut tr, _) = base();
    // Push t1's sink receive past the end of the task span.
    let sink = tr.tasks[2].sink.expect("t1 has a sink");
    tr.events[sink.index()].time = Time(20);
    assert!(trace_codes(&tr).contains(&"T006"));
}

#[test]
fn t007_sink_not_at_begin() {
    let (mut tr, _) = base();
    // Keep the sink inside the span but off the begin instant.
    let sink = tr.tasks[2].sink.expect("t1 has a sink");
    tr.events[sink.index()].time = Time(11);
    assert_eq!(trace_codes(&tr), ["T007"]);
}

#[test]
fn t008_sends_out_of_order() {
    let (mut tr, _) = base();
    tr.tasks[0].sends.swap(0, 1);
    assert_eq!(trace_codes(&tr), ["T008"]);
}

#[test]
fn t009_inconsistent_message() {
    let (mut tr, m) = base();
    tr.msgs[m[0].index()].send_time = Time(3); // send event says 1
    assert_eq!(trace_codes(&tr), ["T009"]);
}

#[test]
fn t010_overlapping_tasks() {
    let (mut tr, _) = base();
    tr.tasks[1].begin = Time(3); // t3 now starts inside t0 [0,4]
    assert_eq!(trace_codes(&tr), ["T010"]);
}

#[test]
fn t011_bad_idle_span() {
    let (mut tr, _) = base();
    tr.idles[0].end = Time(0);
    assert_eq!(trace_codes(&tr), ["T011"]);
}

// ---- H codes: corruptions the per-record validator cannot see. ------

#[test]
fn h001_receive_before_send() {
    let (mut tr, m) = base();
    // Slide t1 wholly before m0's send instant (consistently: begin,
    // end, sink event time, and the message's recv time all move, so
    // every T check still passes).
    let sink = tr.tasks[2].sink.expect("t1 has a sink");
    tr.tasks[2].begin = Time(0);
    tr.tasks[2].end = Time(1);
    tr.events[sink.index()].time = Time(0);
    tr.msgs[m[0].index()].recv_time = Some(Time(0));
    let codes = trace_codes(&tr);
    assert_eq!(codes, ["H001"], "only the causality lint sees this");
}

#[test]
fn h002_happened_before_cycle() {
    // t0 (pe0) -> t1 (pe1) -> t2 (pe0); rewire m1 to awaken t0 instead
    // of t2, keeping every per-record invariant intact: the cycle
    // t0 -> t1 -> t0 is only visible to the happened-before pass.
    let mut b = TraceBuilder::new(2);
    let app = b.add_array("a", Kind::Application);
    let c0 = b.add_chare(app, 0, PeId(0));
    let c1 = b.add_chare(app, 1, PeId(1));
    let e = b.add_entry("m", None);
    let t0 = b.begin_task(c0, e, PeId(0), Time(0));
    let m0 = b.record_send(t0, Time(1), c1, e);
    b.end_task(t0, Time(2));
    let t1 = b.begin_task_from(c1, e, PeId(1), Time(3), m0);
    let m1 = b.record_send(t1, Time(4), c0, e);
    b.end_task(t1, Time(5));
    let t2 = b.begin_task_from(c0, e, PeId(0), Time(6), m1);
    b.end_task(t2, Time(8));
    let mut tr = b.build().unwrap();
    let sink = tr.tasks[t2.index()].sink.expect("t2 has a sink");
    tr.events[sink.index()].task = t0;
    tr.events[sink.index()].time = Time(0);
    tr.tasks[t0.index()].sink = Some(sink);
    tr.tasks[t2.index()].sink = None;
    tr.msgs[m1.index()].recv_task = Some(t0);
    tr.msgs[m1.index()].recv_time = Some(Time(0));
    let codes = trace_codes(&tr);
    // The rewired message is also a receive-before-send, so both
    // causality lints fire.
    assert_eq!(codes, ["H001", "H002"]);
}

#[test]
fn h003_untraced_dependency_with_candidate() {
    let (mut tr, m) = base();
    // Unmatch m0 and turn t1's sink into an untraced receive. t1 is no
    // longer ordered after t0, so it is exactly the paper's Fig. 24
    // candidate.
    let sink = tr.tasks[2].sink.expect("t1 has a sink");
    tr.events[sink.index()].kind = EventKind::Recv { msg: None };
    tr.msgs[m[0].index()].recv_task = None;
    tr.msgs[m[0].index()].recv_time = None;
    let opts = LintOptions { check_structure: false, ..LintOptions::default() };
    let report = lint_trace(&tr, &opts);
    assert_eq!(report.error_count(), 0, "{report}");
    assert_eq!(report.warning_count(), 1, "{report}");
    let d = &report.diagnostics[0];
    assert_eq!(d.code, "H003");
    assert!(d.message.contains("candidate"), "{}", d.message);
    assert!(d.message.contains(&TaskId(2).to_string()), "{}", d.message);
}

#[test]
fn h003_untraced_dependency_without_candidate() {
    let (mut tr, m) = base();
    // Unmatch m1; t2 stays ordered after t0 through m0 and pe1 program
    // order, so no plausible untraced receive remains.
    let sink = tr.tasks[3].sink.expect("t2 has a sink");
    tr.events[sink.index()].kind = EventKind::Recv { msg: None };
    tr.msgs[m[1].index()].recv_task = None;
    tr.msgs[m[1].index()].recv_time = None;
    let opts = LintOptions { check_structure: false, ..LintOptions::default() };
    let report = lint_trace(&tr, &opts);
    assert_eq!(report.warning_count(), 1, "{report}");
    assert!(report.diagnostics[0].message.contains("no receive candidate"));
}

// ---- S codes: corruptions of a recovered structure. -----------------

fn structure_sample() -> (Trace, lsr::core::LogicalStructure) {
    let tr = jacobi2d(&JacobiParams::fig8());
    let ls = extract(&tr, &Config::charm());
    assert!(lint_structure(&tr, &ls).is_clean());
    (tr, ls)
}

fn structure_codes(tr: &Trace, ls: &lsr::core::LogicalStructure) -> Vec<&'static str> {
    lint_structure(tr, ls).diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn s001_truncated_step_table() {
    let (tr, mut ls) = structure_sample();
    ls.step.pop();
    assert_eq!(structure_codes(&tr, &ls), ["S001"]);
}

#[test]
fn s002_phase_graph_cycle() {
    let (tr, mut ls) = structure_sample();
    assert!(ls.phase_succs.len() >= 2, "sample has several phases");
    for p in 1..ls.phase_succs.len() {
        ls.phase_succs[p].push(0);
    }
    assert!(structure_codes(&tr, &ls).contains(&"S002"));
}

#[test]
fn s003_chare_step_collision() {
    let (tr, mut ls) = structure_sample();
    // Give two events of one chare the same phase/step assignment.
    let mut by_chare = std::collections::HashMap::new();
    let pair =
        tr.event_ids().find_map(|e| by_chare.insert(tr.event_chare(e), e).map(|first| (first, e)));
    let (a, b) = pair.expect("some chare has two events");
    ls.phase_of_event[b.index()] = ls.phase_of_event[a.index()];
    ls.local_step[b.index()] = ls.local_step[a.index()];
    ls.step[b.index()] = ls.step[a.index()];
    assert!(structure_codes(&tr, &ls).contains(&"S003"));
}

#[test]
fn s004_leap_chare_overlap() {
    let (tr, mut ls) = structure_sample();
    let c = ls.phases[0].chares[0];
    let other = ls
        .phases
        .iter()
        .position(|ph| ph.id != ls.phases[0].id && ph.chares.contains(&c))
        .expect("chare appears in several phases");
    ls.phases[other].leap = ls.phases[0].leap;
    assert!(structure_codes(&tr, &ls).contains(&"S004"));
}

#[test]
fn s005_message_split_across_phases() {
    let (tr, mut ls) = structure_sample();
    let m = tr.msgs.iter().find(|m| m.recv_task.is_some()).expect("matched msg");
    let sink = tr.task(m.recv_task.unwrap()).sink.unwrap();
    let p = ls.phase_of_event[sink.index()];
    let other = (0..ls.phases.len() as u32).find(|&q| q != p).expect("several phases");
    ls.phase_of_event[sink.index()] = other;
    assert!(structure_codes(&tr, &ls).contains(&"S005"));
}

#[test]
fn s006_offset_inside_predecessor() {
    let (tr, mut ls) = structure_sample();
    let (p, s) = ls
        .phase_succs
        .iter()
        .enumerate()
        .find_map(|(p, ss)| ss.first().map(|&s| (p, s)))
        .expect("sample has phase edges");
    let pend = ls.phases[p].offset + ls.phases[p].max_local;
    // Pull the successor phase back onto its predecessor's end,
    // shifting its events too so the step identity still holds and the
    // offset check is what fires.
    let delta = ls.phases[s as usize].offset - pend;
    ls.phases[s as usize].offset = pend;
    for e in tr.event_ids() {
        if ls.phase_of_event[e.index()] == s {
            ls.step[e.index()] -= delta;
        }
    }
    assert!(structure_codes(&tr, &ls).contains(&"S006"));
}

// ---- P codes. -------------------------------------------------------

#[test]
fn p001_cyclic_stage_snapshot() {
    let snaps = [
        StageSnapshot { stage: "atoms", partitions: 9, is_dag: true, cycle: Vec::new() },
        StageSnapshot {
            stage: "dependency_merge",
            partitions: 4,
            is_dag: false,
            cycle: vec![1, 3],
        },
    ];
    let diags = lint_stages(&snaps);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, "P001");
    assert_eq!(diags[0].severity, Severity::Error);
}

// ---- No false positives: every proxy app lints clean. ---------------

#[test]
fn all_proxy_apps_lint_clean() {
    let charm = Config::charm();
    let mpi = Config::mpi();
    let cases: Vec<(&str, Trace, Config)> = vec![
        ("jacobi", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi.clone()),
        ("divcon", divcon_charm(&DivConParams::small()), charm.clone()),
    ];
    for (name, tr, cfg) in cases {
        let report = lint_trace(&tr, &LintOptions::with_config(cfg));
        assert!(report.is_clean(), "{name} must lint clean:\n{report}");
        assert!(report.structure_checked, "{name} structure passes must run");
    }
}

// ---- R codes: races and untraced-unordered pairs. -------------------

use lsr::lint::analyze_races;

/// Codes the race analyzer reports for a trace under a config.
fn race_codes(tr: &Trace, cfg: &Config, limit: usize) -> Vec<&'static str> {
    analyze_races(tr, cfg, limit).expect("acyclic").diagnostics.iter().map(|d| d.code).collect()
}

/// One sender fans `n` messages out to a second chare; entry serial
/// numbers per receive are given. Every adjacent receive pair is
/// causally concurrent and message-triggered — the minimal race.
fn fan_out(serials: &[Option<u32>]) -> Trace {
    let mut b = TraceBuilder::new(2);
    let app = b.add_array("a", Kind::Application);
    let c0 = b.add_chare(app, 0, PeId(0));
    let c1 = b.add_chare(app, 1, PeId(1));
    let go = b.add_entry("go", None);
    let entries: Vec<EntryId> =
        serials.iter().enumerate().map(|(i, s)| b.add_entry(&format!("e{i}"), *s)).collect();
    let t0 = b.begin_task(c0, go, PeId(0), Time(0));
    let msgs: Vec<_> = entries
        .iter()
        .enumerate()
        .map(|(i, &e)| b.record_send(t0, Time(i as u64 + 1), c1, e))
        .collect();
    b.end_task(t0, Time(serials.len() as u64 + 1));
    let mut at = serials.len() as u64 + 2;
    for (&e, m) in entries.iter().zip(msgs) {
        let t = b.begin_task_from(c1, e, PeId(1), Time(at), m);
        b.end_task(t, Time(at + 1));
        at += 3;
    }
    b.build().expect("fan-out trace is valid")
}

#[test]
fn r001_benign_race_fires_exactly_once() {
    let codes = race_codes(&fan_out(&[None, None]), &Config::charm(), 16);
    assert_eq!(codes, ["R001"]);
}

#[test]
fn r002_structure_affecting_race_fires_exactly_once() {
    // One receive runs a serial-numbered entry: the racy plain receive
    // could be absorbed into it under the other delivery order.
    let codes = race_codes(&fan_out(&[Some(1), None]), &Config::charm(), 16);
    assert_eq!(codes, ["R002"]);
}

#[test]
fn r003_pe_stream_race_fires_exactly_once() {
    // The fan-out targets two runtime chares on one PE: the pair
    // shares the PE's scheduler stream, not a chare.
    let mut b = TraceBuilder::new(2);
    let app = b.add_array("a", Kind::Application);
    let rt = b.add_array("mgr", Kind::Runtime);
    let ca = b.add_chare(app, 0, PeId(1));
    let r0 = b.add_chare(rt, 0, PeId(0));
    let r1 = b.add_chare(rt, 1, PeId(0));
    let go = b.add_entry("go", None);
    let tick = b.add_entry("tick", None);
    let t0 = b.begin_task(ca, go, PeId(1), Time(0));
    let m0 = b.record_send(t0, Time(1), r0, tick);
    let m1 = b.record_send(t0, Time(2), r1, tick);
    b.end_task(t0, Time(3));
    let t1 = b.begin_task_from(r0, tick, PeId(0), Time(4), m0);
    b.end_task(t1, Time(5));
    let t2 = b.begin_task_from(r1, tick, PeId(0), Time(6), m1);
    b.end_task(t2, Time(7));
    let tr = b.build().unwrap();
    let codes = race_codes(&tr, &Config::charm(), 16);
    assert_eq!(codes, ["R003"]);
}

#[test]
fn r004_untraced_pair_fires_exactly_once() {
    // An unmatched send toward a chare whose two tasks are spontaneous
    // and concurrent: no race (neither member has a traced trigger),
    // one R004, cross-linked to the unmatched message's candidate.
    let mut b = TraceBuilder::new(2);
    let app = b.add_array("a", Kind::Application);
    let c0 = b.add_chare(app, 0, PeId(0));
    let c1 = b.add_chare(app, 1, PeId(1));
    let go = b.add_entry("go", None);
    let work = b.add_entry("work", None);
    let t0 = b.begin_task(c1, go, PeId(1), Time(0));
    let m0 = b.record_send(t0, Time(1), c0, work);
    b.end_task(t0, Time(2));
    let t1 = b.begin_task(c0, work, PeId(0), Time(3));
    b.end_task(t1, Time(4));
    let t2 = b.begin_task(c0, work, PeId(0), Time(5));
    b.end_task(t2, Time(6));
    let tr = b.build().expect("unmatched send is valid");
    let report = analyze_races(&tr, &Config::charm(), 16).expect("acyclic");
    let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, ["R004"], "{report}");
    assert!(report.races.is_empty());
    assert_eq!(report.untraced.len(), 1);
    assert!(
        report.diagnostics[0].message.contains(&m0.to_string()),
        "R004 names the unmatched message: {}",
        report.diagnostics[0].message
    );
}

#[test]
fn r005_truncation_fires_exactly_once() {
    // Three racy pairs, limit 1: one R001 plus exactly one R005.
    let codes = race_codes(&fan_out(&[None, None, None, None]), &Config::charm(), 1);
    assert_eq!(codes, ["R001", "R005"]);
}

/// The Fig. 24 PDES preset, mutated the way the paper's scenario
/// degrades: unmatching a traced message turns its receiver into an
/// H003 untraced-dependency candidate, and the race analyzer must
/// cross-link that candidate's R004 pair to the same message.
#[test]
fn pdes_h003_candidates_cross_link_to_r004() {
    let tr = pdes_charm(&PdesParams::fig24());
    let cfg = Config::charm();
    let opts = LintOptions { check_structure: false, ..LintOptions::default() };
    let mut linked = false;
    for (mi, m) in tr.msgs.iter().enumerate() {
        let Some(rt) = m.recv_task else { continue };
        let mut mutated = tr.clone();
        let sink = mutated.tasks[rt.index()].sink.expect("matched receiver has a sink");
        mutated.events[sink.index()].kind = EventKind::Recv { msg: None };
        mutated.msgs[mi].recv_task = None;
        mutated.msgs[mi].recv_time = None;
        // The trace lints with an H003 for this message...
        let lint = lint_trace(&mutated, &opts);
        let h003 = lint
            .diagnostics
            .iter()
            .any(|d| d.code == "H003" && d.message.contains(&m.id.to_string()));
        if !h003 {
            continue;
        }
        // ...and when its candidate sits in a concurrent pair, the race
        // analyzer reports the same message in an R004.
        let report = analyze_races(&mutated, &cfg, 100_000).expect("acyclic");
        if report
            .diagnostics
            .iter()
            .any(|d| d.code == "R004" && d.message.contains(&m.id.to_string()))
        {
            linked = true;
            break;
        }
    }
    assert!(linked, "some unmatched pdes message must cross-link H003 to R004");
}

/// Every Charm++ proxy preset races (over-decomposition guarantees
/// concurrent deliveries), every deterministic MPI preset does not,
/// and no preset has a structure-affecting race.
#[test]
fn preset_race_expectations() {
    let charm = Config::charm();
    let mpi = Config::mpi();
    let cases: Vec<(&str, Trace, Config, bool)> = vec![
        ("jacobi", jacobi2d(&JacobiParams::fig15()), charm.clone(), true),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone(), true),
        ("lassen", lassen_charm(&LassenParams::chares8()), charm.clone(), true),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone(), true),
        ("divcon", divcon_charm(&DivConParams::small()), charm.clone(), true),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone(), false),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
            false,
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi.clone(), false),
    ];
    for (name, tr, cfg, expect_races) in cases {
        let report = analyze_races(&tr, &cfg, 100_000).expect("acyclic");
        assert_eq!(!report.races.is_empty(), expect_races, "{name}: {report}");
        assert_eq!(report.structure_affecting_count(), 0, "{name}: {report}");
    }
}
