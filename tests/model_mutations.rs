//! Conformance tests for `lsr-model`: every generator preset must
//! conform to its own static skeleton with zero M findings, the model
//! must be a function of the declaration layer alone, and each planted
//! mutation of the declarations (or of the trace) must trip exactly the
//! intended M code.

use lsr_core::Config;
use lsr_model::{check, conforms, Finding, SkeletonModel};
use lsr_trace::{CommPattern, Kind, PeId, SigId, SigInfo, Time, Trace, TraceBuilder};

/// All eleven generator presets, each with the extraction configuration
/// its CLI invocation uses (kept in sync with `tests/obs_properties.rs`).
fn presets() -> Vec<(&'static str, Trace, Config)> {
    use lsr_apps::*;
    let charm = Config::charm();
    let mpi = Config::mpi();
    vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8()), charm.clone()),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen8", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("lassen64", lassen_charm(&LassenParams::chares64()), charm.clone()),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2)), mpi.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi),
        ("divcon", divcon_charm(&DivConParams::small()), charm),
    ]
}

fn codes(tr: &Trace, cfg: &Config) -> Vec<&'static str> {
    let ls = lsr_core::extract(tr, cfg);
    let model = SkeletonModel::build(&tr.declarations());
    let report = check(&model, tr, &ls);
    report.findings.iter().map(Finding::code).collect()
}

/// The shared mutation substrate: jacobi-fig15 under the Charm++
/// configuration (neighbor halo exchange plus a runtime reduction, so
/// every pattern kind is represented).
fn substrate() -> (Trace, Config) {
    (lsr_apps::jacobi2d(&lsr_apps::JacobiParams::fig15()), Config::charm())
}

// ---------------------------------------------------------------------
// Clean sweep and staticness
// ---------------------------------------------------------------------

#[test]
fn all_presets_conform_to_their_own_skeleton() {
    for (name, tr, cfg) in presets() {
        let ls = lsr_core::extract(&tr, &cfg);
        let model = SkeletonModel::build(&tr.declarations());
        assert!(!model.degraded, "{name}: generated declarations are complete");
        assert!(!model.sigs.is_empty(), "{name}: presets declare signatures");
        let report = check(&model, &tr, &ls);
        assert!(report.is_clean(), "{name}: expected zero M findings, got {:?}", report.findings);
        assert!(conforms(&tr, &ls), "{name}: oracle must accept");
    }
}

/// The acceptance gate for staticness: truncating the event stream to
/// zero must leave the model bit-identical, because `build` only ever
/// sees the declaration tables.
#[test]
fn model_is_unchanged_when_the_event_stream_is_dropped() {
    for (name, tr, _) in presets() {
        let full = SkeletonModel::build(&tr.declarations());
        let mut stripped = tr.clone();
        stripped.tasks.clear();
        stripped.events.clear();
        stripped.msgs.clear();
        stripped.idles.clear();
        let empty = SkeletonModel::build(&stripped.declarations());
        assert_eq!(full, empty, "{name}: model must not depend on events");
    }
}

// ---------------------------------------------------------------------
// Planted mutations, one per code
// ---------------------------------------------------------------------

/// M001 (a): shrinking every neighbor signature's radius to zero makes
/// the halo exchange statically impossible.
#[test]
fn shrunken_neighbor_radius_trips_m001() {
    let (mut tr, cfg) = substrate();
    let mut narrowed = 0;
    for s in &mut tr.sigs {
        if let CommPattern::Neighbor { radius } = &mut s.pattern {
            assert!(*radius > 0, "jacobi halo signatures span neighbors");
            *radius = 0;
            narrowed += 1;
        }
    }
    assert!(narrowed > 0, "substrate must have neighbor signatures");
    let found = codes(&tr, &cfg);
    assert!(found.contains(&"M001"), "got {found:?}");
    assert!(!found.contains(&"M006"), "narrowing is not degradation");
}

/// M001 (b): deleting a signature orphans the traffic it admitted.
/// Signature ids stay dense (the table invariant), so the survivors are
/// renumbered.
#[test]
fn deleted_signature_trips_m001() {
    let (mut tr, cfg) = substrate();
    let victim = tr
        .sigs
        .iter()
        .position(|s| matches!(s.pattern, CommPattern::Neighbor { .. }))
        .expect("substrate must have neighbor signatures");
    tr.sigs.remove(victim);
    for (i, s) in tr.sigs.iter_mut().enumerate() {
        s.id = SigId(i as u32);
    }
    let found = codes(&tr, &cfg);
    assert!(found.contains(&"M001"), "got {found:?}");
}

/// M002 (wider): lowering a tree signature's declared arity to zero
/// caps the legal fan-in at one, but the reduction still combines many
/// contributions per destination.
#[test]
fn lowered_tree_arity_trips_m002() {
    let (mut tr, cfg) = substrate();
    let mut lowered = 0;
    for s in &mut tr.sigs {
        if let CommPattern::Tree { arity } = &mut s.pattern {
            *arity = 0;
            lowered += 1;
        }
    }
    assert!(lowered > 0, "substrate must have tree signatures");
    let found = codes(&tr, &cfg);
    assert!(found.contains(&"M002"), "got {found:?}");
    // Patterns admit the same traffic, so no M001 rides along.
    assert!(!found.contains(&"M001"), "got {found:?}");
}

/// M002 (deeper): a hand-built "collective" that is really a 32-chare
/// linear relay chains 31 dependent messages under one tree signature —
/// far past the `2*ceil(log2 32)+1 = 11` hop bound any legal combining
/// layout allows.
#[test]
fn linear_chain_collective_trips_m002() {
    let p = 32u32;
    let mut b = TraceBuilder::new(p);
    let arr = b.add_array("ranks", Kind::Application);
    let chares: Vec<_> = (0..p).map(|i| b.add_chare(arr, i, PeId(i))).collect();
    let reduce = b.add_collective_entry("reduce");
    let mut now = 0u64;
    let mut awoke = None;
    for i in 0..p as usize {
        let t = match awoke {
            None => b.begin_task(chares[i], reduce, PeId(i as u32), Time(now)),
            Some(m) => b.begin_task_from(chares[i], reduce, PeId(i as u32), Time(now), m),
        };
        if i + 1 < p as usize {
            awoke = Some(b.record_send(t, Time(now + 1), chares[i + 1], reduce));
        }
        b.end_task(t, Time(now + 2));
        now += 3;
    }
    let tr = b.build().expect("chain builds");

    let model = SkeletonModel::build(&tr.declarations());
    assert_eq!(model.shapes.len(), 1, "one tree signature expected");
    assert_eq!(model.shapes[0].depth_max, 11);

    let ls = lsr_core::extract(&tr, &Config::charm());
    let report = check(&model, &tr, &ls);
    let m002: Vec<&Finding> = report.findings.iter().filter(|f| f.code() == "M002").collect();
    assert_eq!(m002.len(), 1, "got {:?}", report.findings);
    match m002[0] {
        Finding::CollectiveShape { depth, depth_max, .. } => {
            assert_eq!(*depth, 31);
            assert_eq!(*depth_max, 11);
        }
        other => panic!("wrong finding {other:?}"),
    }
}

/// M003: zeroing every signature's registered volume collapses each
/// family's phase bounds to `[0, 0]`, below what recovery observes.
#[test]
fn zeroed_signature_volume_trips_m003() {
    let (mut tr, cfg) = substrate();
    for s in &mut tr.sigs {
        s.msgs = 0;
    }
    let found = codes(&tr, &cfg);
    assert!(found.contains(&"M003"), "got {found:?}");
    // The patterns still admit all traffic.
    assert!(!found.contains(&"M001"), "got {found:?}");
}

/// M004: a declared path between entries that never exchange a message
/// is reported as unobserved — a warning, never an error.
#[test]
fn bogus_declared_path_trips_m004() {
    let (mut tr, cfg) = substrate();
    let keys: std::collections::HashSet<_> = tr.sigs.iter().map(|s| s.key()).collect();
    let arr = tr.arrays[0].id;
    let (src_entry, dst_entry) = {
        let mut pick = None;
        'outer: for a in &tr.entries {
            for b in &tr.entries {
                if !keys.contains(&(arr, a.id, arr, b.id)) {
                    pick = Some((a.id, b.id));
                    break 'outer;
                }
            }
        }
        pick.expect("some entry pair carries no traffic")
    };
    tr.sigs.push(SigInfo {
        id: SigId(tr.sigs.len() as u32),
        src_array: arr,
        src_entry,
        dst_array: arr,
        dst_entry,
        pattern: CommPattern::Any,
        msgs: 7,
    });

    let ls = lsr_core::extract(&tr, &cfg);
    let model = SkeletonModel::build(&tr.declarations());
    let report = check(&model, &tr, &ls);
    let found: Vec<&'static str> = report.findings.iter().map(Finding::code).collect();
    assert!(found.contains(&"M004"), "got {found:?}");
    assert_eq!(report.error_count(), 0, "M004 is a warning: {found:?}");
    assert!(conforms(&tr, &ls), "warnings must not reject the oracle");
}

/// M005: swapping two SDAG serial numbers in the LULESH declarations
/// makes each chare's observed task order wrap to two different "loop
/// heads" — no consistent cycle exists.
#[test]
fn swapped_sdag_serials_trip_m005() {
    let cfg = Config::charm();
    let mut tr = lsr_apps::lulesh_charm(&lsr_apps::LuleshParams::fig16_charm());
    let mut swapped = 0;
    for e in &mut tr.entries {
        match e.sdag_serial {
            Some(2) => {
                e.sdag_serial = Some(4);
                swapped += 1;
            }
            Some(4) => {
                e.sdag_serial = Some(2);
                swapped += 1;
            }
            _ => {}
        }
    }
    assert!(swapped >= 2, "lulesh declares serials 2 and 4");
    let found = codes(&tr, &cfg);
    assert!(found.contains(&"M005"), "got {found:?}");
    // Serials are not part of signature admission, so nothing else fires.
    assert!(found.iter().all(|c| *c == "M005"), "only M005 expected, got {found:?}");
}

/// M006 (a): stripping the signature table entirely degrades the model;
/// may-communicate and phase-bound checks are suppressed rather than
/// reported vacuously.
#[test]
fn empty_signature_table_trips_m006_and_suppresses_m001() {
    let (mut tr, cfg) = substrate();
    tr.sigs.clear();
    let ls = lsr_core::extract(&tr, &cfg);
    let model = SkeletonModel::build(&tr.declarations());
    assert!(model.degraded);
    let report = check(&model, &tr, &ls);
    let found: Vec<&'static str> = report.findings.iter().map(Finding::code).collect();
    assert!(found.contains(&"M006"), "got {found:?}");
    assert!(!found.contains(&"M001"), "degraded models cannot rule edges out");
    assert!(!found.contains(&"M003"), "degraded bounds are vacuous");
    assert_eq!(report.error_count(), 0);
    assert!(conforms(&tr, &ls), "degradation alone must not reject the oracle");
}

/// M006 (b): one unclassifiable pattern is enough to degrade the model.
#[test]
fn unknown_pattern_trips_m006() {
    let (mut tr, cfg) = substrate();
    tr.sigs[0].pattern = CommPattern::Unknown;
    let found = codes(&tr, &cfg);
    assert!(found.contains(&"M006"), "got {found:?}");
    assert!(!found.contains(&"M001"), "got {found:?}");
}
