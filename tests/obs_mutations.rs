//! Mutation tests for the observability layer: each way a profile can
//! be corrupted — a dropped stage span, a double-closed span, a zeroed
//! counter, a broken span tree — must be caught by the validators the
//! other tests rely on. A profile checker that cannot detect planted
//! corruption proves nothing when it passes.

use lsr::apps::{jacobi2d, JacobiParams};
use lsr::core::{try_extract, Config, EXTRACT_STAGE_SPANS};
use lsr::obs::{Profile, ProfileError, Recorder, PROFILE_SCHEMA};

/// A real profile from a real extraction, as the mutation substrate.
fn healthy_profile() -> Profile {
    let trace = jacobi2d(&JacobiParams::fig8());
    let rec = Recorder::enabled();
    try_extract(&trace, &Config::charm().with_recorder(rec.clone())).expect("preset extracts");
    let p = rec.profile("mutation-substrate").expect("profile");
    assert!(p.validate().is_empty(), "substrate must start healthy: {:?}", p.validate());
    assert!(p.expect_spans(EXTRACT_STAGE_SPANS).is_empty());
    p
}

fn has<F: Fn(&ProfileError) -> bool>(errs: &[ProfileError], pred: F) -> bool {
    errs.iter().any(pred)
}

#[test]
fn dropped_stage_span_is_caught() {
    let mut p = healthy_profile();
    // Mutation: the pipeline "forgets" to record the ordering stage.
    let ix = p.spans.iter().position(|s| s.name == "ordering").expect("ordering span");
    p.spans.remove(ix);
    let errs = p.expect_spans(EXTRACT_STAGE_SPANS);
    assert!(
        has(&errs, |e| matches!(e, ProfileError::MissingSpan { name } if name == "ordering")),
        "dropping a stage span must be reported: {errs:?}"
    );
}

#[test]
fn double_closed_span_is_caught() {
    let rec = Recorder::enabled();
    drop(rec.span("stage"));
    // Mutation: a second close for a span that is already closed.
    rec.__force_close("stage");
    let p = rec.profile("double-close").expect("profile");
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(e, ProfileError::Anomaly { .. })),
        "double-closing a span must surface as an anomaly: {errs:?}"
    );
}

#[test]
fn unclosed_span_is_caught() {
    let rec = Recorder::enabled();
    let open = rec.span("leaky");
    let p = rec.profile("unclosed").expect("profile");
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(e, ProfileError::UnclosedSpan { name } if name == "leaky")),
        "an unclosed span must be reported: {errs:?}"
    );
    drop(open);
}

#[test]
fn zeroed_counter_is_caught() {
    let mut p = healthy_profile();
    // Mutation: a counter total is wiped while its increments remain.
    let c = p.counters.iter_mut().find(|c| c.name == "core.atoms").expect("atoms counter");
    c.total = 0;
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(
            e,
            ProfileError::CounterMismatch { name, total: 0, .. } if name == "core.atoms"
        )),
        "zeroing a counter must be reported: {errs:?}"
    );
}

#[test]
fn zero_delta_increment_is_caught() {
    let mut p = healthy_profile();
    // Mutation: a bogus zero-delta event appended to the log. (The real
    // recorder drops `add(_, 0)` calls, so one in the log is tampering.)
    p.counter_events.push(lsr::obs::CounterEvent { name: "core.atoms".into(), delta: 0 });
    let errs = p.validate();
    assert!(
        has(
            &errs,
            |e| matches!(e, ProfileError::NonMonotoneEvent { name } if name == "core.atoms")
        ),
        "a zero-delta counter event must be reported: {errs:?}"
    );
}

#[test]
fn orphaned_counter_event_is_caught() {
    let mut p = healthy_profile();
    // Mutation: an increment for a counter that has no total row.
    p.counter_events.push(lsr::obs::CounterEvent { name: "phantom".into(), delta: 3 });
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(e, ProfileError::NonMonotoneEvent { name } if name == "phantom")),
        "an orphaned counter event must be reported: {errs:?}"
    );
}

#[test]
fn forward_parent_reference_is_caught() {
    let mut p = healthy_profile();
    // Mutation: a span claims a later span as its parent.
    let last = p.spans.len() - 1;
    p.spans[0].parent = Some(last);
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(e, ProfileError::BadParent { .. })),
        "a forward parent index must be reported: {errs:?}"
    );
}

#[test]
fn child_escaping_its_parent_is_caught() {
    let mut p = healthy_profile();
    // Mutation: stretch a child span past the end of its parent.
    let ix = p.spans.iter().position(|s| s.parent.is_some()).expect("some nested span");
    p.spans[ix].dur_ns = Some(u64::MAX / 2);
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(e, ProfileError::ChildEscapesParent { .. })),
        "a child outliving its parent must be reported: {errs:?}"
    );
}

#[test]
fn schema_tampering_is_caught() {
    let mut p = healthy_profile();
    p.schema = "lsr-obs-profile/0".into();
    let errs = p.validate();
    assert!(
        has(&errs, |e| matches!(e, ProfileError::SchemaMismatch { .. })),
        "a foreign schema tag must be reported: {errs:?}"
    );
    assert_eq!(PROFILE_SCHEMA, "lsr-obs-profile/2");
}
