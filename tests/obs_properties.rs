//! Properties of the observability layer (`lsr-obs`): enabling the
//! recorder never changes extraction output, and every profile it
//! produces is well-formed — spans close, nesting follows the pipeline
//! stage order, counters are monotone.

mod support;

use lsr_core::{try_extract, Config, EXTRACT_STAGE_SPANS};
use lsr_obs::{Profile, Recorder};
use lsr_trace::Trace;
use proptest::prelude::*;

/// All eleven generator presets, each with the extraction configuration
/// its CLI invocation uses (`--mpi` for the MPI apps, plus
/// `--no-process-order` for the merge tree).
fn presets() -> Vec<(&'static str, Trace, Config)> {
    use lsr_apps::*;
    let charm = Config::charm();
    let mpi = Config::mpi();
    vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8()), charm.clone()),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen8", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("lassen64", lassen_charm(&LassenParams::chares64()), charm.clone()),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2)), mpi.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi),
        ("divcon", divcon_charm(&DivConParams::small()), charm),
    ]
}

/// Asserts the structural well-formedness the mutation tests rely on:
/// validation passes, every span is closed, and the stage spans under
/// `extract` appear in pipeline order.
fn assert_well_formed(name: &str, p: &Profile) {
    let errs = p.validate();
    assert!(errs.is_empty(), "{name}: profile must validate: {errs:?}");
    assert!(p.anomalies.is_empty(), "{name}: no recording anomalies: {:?}", p.anomalies);
    for s in &p.spans {
        assert!(s.dur_ns.is_some(), "{name}: span {:?} was opened but never closed", s.name);
    }
    let missing = p.expect_spans(EXTRACT_STAGE_SPANS);
    assert!(missing.is_empty(), "{name}: stage spans missing: {missing:?}");
    // The unconditional stages must be children of `extract`, in
    // ingest→partition→order order (conditional stages may interleave).
    let kids = p.children_of("extract");
    let mut last = 0;
    for stage in EXTRACT_STAGE_SPANS {
        let pos = kids
            .iter()
            .position(|k| k == stage)
            .unwrap_or_else(|| panic!("{name}: {stage} must be a child of extract, got {kids:?}"));
        assert!(pos >= last, "{name}: stage {stage} out of pipeline order in {kids:?}");
        last = pos;
    }
    // Counters are totals of positive deltas: monotone by construction,
    // and the event log must reconcile with every total.
    for ev in &p.counter_events {
        assert!(ev.delta > 0, "{name}: counter event with non-positive delta: {ev:?}");
    }
    for c in &p.counters {
        let sum: u64 = p.counter_events.iter().filter(|e| e.name == c.name).map(|e| e.delta).sum();
        assert_eq!(sum, c.total, "{name}: counter {} events must sum to its total", c.name);
    }
}

/// The differential property, on the real proxy apps: extraction with
/// an enabled recorder is bit-identical to the disabled default, and
/// the profile is well-formed with the core counters populated.
#[test]
fn enabled_recorder_never_changes_extraction_output() {
    for (name, trace, cfg) in presets() {
        let off = try_extract(&trace, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let rec = Recorder::enabled();
        let on = try_extract(&trace, &cfg.with_recorder(rec.clone()))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(off, on, "{name}: recorder must not perturb the recovered structure");

        let p = rec.profile(name).expect("enabled recorder yields a profile");
        assert_well_formed(name, &p);
        assert!(p.counter("core.atoms").unwrap_or(0) > 0, "{name}: atoms counter populated");
        assert_eq!(
            p.counter("core.phases"),
            Some(on.phases.len() as u64),
            "{name}: phase counter matches the structure"
        );
    }
}

/// Counters are deterministic: two enabled runs over the same preset
/// agree exactly (spans differ only in timing).
#[test]
fn counters_are_deterministic_per_preset() {
    for (name, trace, cfg) in presets() {
        let rec1 = Recorder::enabled();
        let rec2 = Recorder::enabled();
        try_extract(&trace, &cfg.clone().with_recorder(rec1.clone())).unwrap();
        try_extract(&trace, &cfg.with_recorder(rec2.clone())).unwrap();
        assert_eq!(rec1.counters(), rec2.counters(), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Span-tree well-formedness holds for arbitrary tape-generated
    /// traces under every extraction configuration, and the recorder
    /// stays extraction-invariant there too.
    #[test]
    fn profiles_are_well_formed_on_arbitrary_traces(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        for (name, cfg) in support::all_configs() {
            let off = try_extract(&trace, &cfg).expect("tape traces extract");
            let rec = Recorder::enabled();
            let on = try_extract(&trace, &cfg.with_recorder(rec.clone()))
                .expect("tape traces extract");
            prop_assert_eq!(&off, &on, "{}", name);
            let p = rec.profile(name).expect("profile");
            assert_well_formed(name, &p);
        }
    }
}
