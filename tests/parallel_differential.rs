//! Serial/parallel differential suite (docs/parallel.md): extraction
//! must be **bit-identical** at every thread count — same
//! `LogicalStructure`, same `MergeProvenance` decision log, and the
//! audit certificate must still replay cleanly. The parallel pipeline
//! only shards candidate *discovery*; every order-sensitive decision is
//! replayed serially in canonical input order, so any divergence here
//! is a determinism bug, not tolerable noise.

mod support;

use lsr_audit::{audit_extract, AuditOptions};
use lsr_core::{try_extract_with_provenance, Config, ExtractError};
use lsr_trace::Trace;
use proptest::prelude::*;

/// The thread counts the suite sweeps. 1 is the serial reference; the
/// rest exercise chunk boundaries, the merge tree, and worker counts
/// above the host's core count (the pool caps nothing — determinism
/// may not depend on how many workers actually run).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// All eleven generator presets with the configuration their CLI
/// invocation uses (mirrors `obs_properties::presets`).
fn presets() -> Vec<(&'static str, Trace, Config)> {
    use lsr_apps::*;
    let charm = Config::charm();
    let mpi = Config::mpi();
    vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8()), charm.clone()),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15()), charm.clone()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), charm.clone()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), mpi.clone()),
        ("lassen8", lassen_charm(&LassenParams::chares8()), charm.clone()),
        ("lassen64", lassen_charm(&LassenParams::chares64()), charm.clone()),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2)), mpi.clone()),
        ("pdes", pdes_charm(&PdesParams::fig24()), charm.clone()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            mpi.clone().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), mpi),
        ("divcon", divcon_charm(&DivConParams::small()), charm),
    ]
}

/// Asserts the serial reference and the `threads`-way run agree on
/// structure and provenance, byte for byte.
fn assert_identical(name: &str, trace: &Trace, cfg: &Config) {
    let serial = try_extract_with_provenance(trace, &cfg.clone().with_threads(1))
        .unwrap_or_else(|e| panic!("{name}/serial: {e}"));
    for threads in THREADS {
        let par = try_extract_with_provenance(trace, &cfg.clone().with_threads(threads))
            .unwrap_or_else(|e| panic!("{name}/t{threads}: {e}"));
        assert_eq!(serial.0, par.0, "{name}: structure differs between 1 and {threads} threads");
        assert_eq!(
            serial.1, par.1,
            "{name}: provenance log differs between 1 and {threads} threads"
        );
    }
}

/// Every preset, every thread count: bit-identical structure and
/// provenance.
#[test]
fn presets_are_thread_count_invariant() {
    for (name, trace, cfg) in presets() {
        assert_identical(name, &trace, &cfg);
    }
}

/// The audit certificate (merge-log replay) passes at every thread
/// count — the parallel pipeline records the same justification for
/// every union it performs.
#[test]
fn audit_certificate_holds_at_every_thread_count() {
    for (name, trace, cfg) in presets() {
        for threads in THREADS {
            let (_, report) =
                audit_extract(&trace, &cfg.clone().with_threads(threads), AuditOptions::default())
                    .unwrap_or_else(|e| panic!("{name}/t{threads}: {e}"));
            assert!(
                report.is_certified(),
                "{name}/t{threads}: audit certificate failed: {}",
                report.to_json()
            );
        }
    }
}

/// `--parallel` phase ordering composes with the sharded pipeline: the
/// thread policy must not perturb the worker-queue schedule's *output*.
#[test]
fn parallel_ordering_is_thread_count_invariant() {
    for (name, trace, cfg) in presets() {
        assert_identical(name, &trace, &cfg.clone().with_parallel(true));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adversarial tape-generated traces (unmatched messages,
    /// broadcasts, runtime chares) are thread-count invariant under
    /// every extraction configuration.
    #[test]
    fn random_traces_are_thread_count_invariant(
        pes in 1u32..5,
        chares in 1u32..9,
        tape in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        for (cname, cfg) in support::all_configs() {
            let serial = try_extract_with_provenance(&trace, &cfg.clone().with_threads(1));
            for threads in [2usize, 4, 8] {
                let par = try_extract_with_provenance(&trace, &cfg.clone().with_threads(threads));
                match (&serial, &par) {
                    (Ok(s), Ok(p)) => {
                        prop_assert_eq!(&s.0, &p.0, "{}/t{}: structure", cname, threads);
                        prop_assert_eq!(&s.1, &p.1, "{}/t{}: provenance", cname, threads);
                    }
                    (Err(se), Err(pe)) => prop_assert_eq!(
                        format!("{se}"), format!("{pe}"),
                        "{}/t{}: errors differ", cname, threads
                    ),
                    _ => prop_assert!(
                        false,
                        "{}/t{}: one run errored, the other did not", cname, threads
                    ),
                }
            }
        }
    }
}

/// A typed extraction error surfaces identically through the parallel
/// pool: `try_extract*` on a windowed degenerate trace must return the
/// same `ExtractError` (not a panic, not a different error) at every
/// thread count. Exercised end-to-end here; the cyclic-phase-graph
/// variant lives next to the stage internals in `lsr-core` unit tests,
/// since a validated trace cannot reach it.
#[test]
fn errors_are_thread_count_invariant() {
    // An empty window produces the degenerate-trace error path.
    let trace = lsr_apps::jacobi2d(&lsr_apps::JacobiParams::fig15());
    let windowed =
        lsr_trace::window(&trace, lsr_trace::Time(u64::MAX - 1), lsr_trace::Time(u64::MAX));
    let serial = try_extract_with_provenance(&windowed, &Config::charm().with_threads(1));
    for threads in THREADS {
        let par = try_extract_with_provenance(&windowed, &Config::charm().with_threads(threads));
        match (&serial, &par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(s, p, "t{threads}: outputs differ");
            }
            (Err(se), Err(pe)) => {
                assert_eq!(format!("{se}"), format!("{pe}"), "t{threads}: errors differ");
            }
            _ => panic!("t{threads}: one run errored, the other did not"),
        }
    }
    // The error type itself round-trips: PhaseCycle formatting is
    // stable, so the differential comparison above is meaningful.
    let e = ExtractError::PhaseCycle { cycle: vec![3, 1, 4] };
    assert!(format!("{e}").contains("3 -> 1 -> 4"));
}
