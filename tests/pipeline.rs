//! Cross-crate integration tests: every proxy application's trace runs
//! through the full pipeline (simulate → validate → extract → verify →
//! metrics → render) under every configuration.

mod support;

use lsr_apps::*;
use lsr_core::{extract, Config};
use lsr_metrics::{
    attributes_whole_task, idle_experienced, sub_block_durations, DifferentialDuration, Imbalance,
};
use lsr_trace::{Dur, Trace};

fn all_app_traces() -> Vec<(&'static str, Trace, Config)> {
    let mut small_jacobi = JacobiParams::fig15();
    small_jacobi.iters = 2;
    let mut lassen = LassenParams::chares8();
    lassen.iters = 2;
    let mut lassen64 = LassenParams::chares64();
    lassen64.iters = 2;
    vec![
        ("jacobi", jacobi2d(&small_jacobi), Config::charm()),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm()), Config::charm()),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi()), Config::mpi()),
        ("lassen-charm-8", lassen_charm(&lassen), Config::charm()),
        ("lassen-charm-64", lassen_charm(&lassen64), Config::charm()),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2)), Config::mpi()),
        ("pdes", pdes_charm(&PdesParams::fig24()), Config::charm()),
        (
            "mergetree",
            mergetree_mpi(&MergeTreeParams::small()),
            Config::mpi().with_process_order(false),
        ),
        ("bt", bt_mpi(&BtParams::fig1()), Config::mpi()),
    ]
}

#[test]
fn every_app_trace_is_valid_and_extracts() {
    for (name, trace, cfg) in all_app_traces() {
        lsr_trace::validate(&trace).unwrap_or_else(|e| panic!("{name}: invalid trace: {e:?}"));
        let ls = extract(&trace, &cfg);
        ls.verify(&trace).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(ls.num_phases() > 0, "{name}: no phases");
    }
}

#[test]
fn metrics_hold_invariants_on_all_apps() {
    for (name, trace, cfg) in all_app_traces() {
        let ls = extract(&trace, &cfg);
        // Sub-blocks partition every task exactly.
        let subs = sub_block_durations(&trace);
        assert!(attributes_whole_task(&trace, &subs), "{name}: sub-block accounting");
        // Differential duration: non-negative with a zero witness at
        // every (phase, step) that has events.
        let dd = DifferentialDuration::compute(&trace, &ls);
        let mut by_key: std::collections::HashMap<(u32, u64), Dur> =
            std::collections::HashMap::new();
        for e in trace.event_ids() {
            let key = (ls.phase_of(e), ls.global_step(e));
            let d = dd.per_event[e.index()];
            by_key.entry(key).and_modify(|m| *m = (*m).min(d)).or_insert(d);
        }
        assert!(
            by_key.values().all(|&m| m == Dur::ZERO),
            "{name}: every step needs a zero-differential witness"
        );
        // Idle experienced never exceeds the total idle on the task's PE.
        let idle = idle_experienced(&trace);
        let mut per_pe_idle = vec![Dur::ZERO; trace.pe_count as usize];
        for i in &trace.idles {
            per_pe_idle[i.pe.index()] += i.end - i.begin;
        }
        for t in &trace.tasks {
            assert!(
                idle[t.id.index()] <= per_pe_idle[t.pe.index()],
                "{name}: task idle-experienced exceeds its PE's idle"
            );
        }
        // Imbalance: spreads are consistent with per-phase extremes.
        let imb = Imbalance::compute(&trace, &ls);
        for (p, row) in imb.spread.iter().enumerate() {
            let max_spread = row.iter().copied().max().unwrap_or(Dur::ZERO);
            assert_eq!(max_spread, imb.per_phase[p], "{name}: phase {p} spread mismatch");
        }
        assert!(imb.overall() <= imb.loads.iter().flatten().copied().sum::<Dur>());
    }
}

#[test]
fn renders_work_for_all_apps() {
    for (name, trace, cfg) in all_app_traces() {
        let ls = extract(&trace, &cfg);
        let a = lsr_render::logical_by_phase(&trace, &ls);
        assert!(a.lines().count() > 2, "{name}: logical ascii");
        let p = lsr_render::physical_by_phase(&trace, &ls);
        assert!(p.lines().count() > 2, "{name}: physical ascii");
        let svg = lsr_render::logical_svg(&trace, &ls, &lsr_render::Coloring::Phase);
        assert!(svg.contains("</svg>"), "{name}: svg well-formed");
        let dd = DifferentialDuration::compute(&trace, &ls);
        let vals: Vec<f64> = dd.per_event.iter().map(|d| d.nanos() as f64).collect();
        let m = lsr_render::logical_by_metric(&trace, &ls, &vals);
        assert!(!m.is_empty(), "{name}: metric view");
    }
}

#[test]
fn structure_is_stable_across_scheduling_noise() {
    // Phase structure is (approximately) a property of the program, not
    // the schedule: counts may differ by a boundary remnant or two when
    // iterations bleed into each other, but not more.
    let mut base_params = JacobiParams::fig8();
    base_params.iters = 2;
    let base =
        extract(&jacobi2d(&JacobiParams { seed: 77, ..base_params.clone() }), &Config::charm());
    for seed in [1u64, 2, 3] {
        let p = JacobiParams { seed, ..base_params.clone() };
        let tr = jacobi2d(&p);
        let ls = extract(&tr, &Config::charm());
        ls.verify(&tr).unwrap();
        let d_phases = (ls.num_phases() as i64 - base.num_phases() as i64).abs();
        let d_app = (ls.app_phase_count() as i64 - base.app_phase_count() as i64).abs();
        assert!(d_phases <= 2, "seed {seed}: phase count drifted by {d_phases}");
        assert!(d_app <= 2, "seed {seed}: app phase count drifted by {d_app}");
        // The per-iteration halo phases (all 64 chares) always appear.
        let full = ls.phases.iter().filter(|ph| !ph.is_runtime && ph.chares.len() >= 64).count();
        assert!(full >= 2, "seed {seed}: both halo phases must be recovered, got {full}");
    }
}

#[test]
fn quality_report_ranks_apps_sensibly() {
    let jacobi = jacobi2d(&JacobiParams::fig8());
    let pdes = pdes_charm(&PdesParams::fig24());
    let q_jacobi = lsr_trace::QualityReport::analyze(&jacobi);
    let q_pdes = lsr_trace::QualityReport::analyze(&pdes);
    assert!(
        q_jacobi.score() > q_pdes.score(),
        "the PDES trace hides dependencies and must score lower ({} vs {})",
        q_jacobi.score(),
        q_pdes.score()
    );
}

#[test]
fn tape_generator_produces_valid_traces() {
    let tape: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
    let tr = support::trace_from_tape(3, 5, &tape);
    assert!(lsr_trace::validate(&tr).is_ok());
    assert!(!tr.tasks.is_empty());
    for (name, cfg) in support::all_configs() {
        let ls = extract(&tr, &cfg);
        ls.verify(&tr).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
