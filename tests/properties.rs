//! Property-based tests over randomly generated workloads: the
//! DESIGN.md invariants must hold for *any* valid trace, not just the
//! proxy apps.

mod support;

use lsr_core::{extract, Config, OrderingPolicy};
use lsr_metrics::{attributes_whole_task, idle_experienced, sub_block_durations};
use lsr_trace::Dur;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants 1–7 of DESIGN.md, checked by `verify`, hold for all
    /// configurations on arbitrary tape-generated traces.
    #[test]
    fn extraction_invariants_hold(
        pes in 1u32..5,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        prop_assert!(lsr_trace::validate(&trace).is_ok());
        for (name, cfg) in support::all_configs() {
            let ls = extract(&trace, &cfg);
            if let Err(e) = ls.verify(&trace) {
                prop_assert!(false, "{name}: {e}");
            }
        }
    }

    /// Reordering only permutes steps within lanes: the set of phases
    /// and the per-phase event membership are ordering-independent.
    #[test]
    fn ordering_policy_does_not_change_phases(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let a = extract(&trace, &Config::charm());
        let b = extract(&trace, &Config::charm().with_ordering(OrderingPolicy::PhysicalTime));
        prop_assert_eq!(a.num_phases(), b.num_phases());
        prop_assert_eq!(&a.phase_of_event, &b.phase_of_event);
        prop_assert_eq!(&a.task_phase, &b.task_phase);
    }

    /// Parallel ordering is an implementation detail: identical output.
    #[test]
    fn parallel_ordering_is_deterministic(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let serial = extract(&trace, &Config::charm());
        let parallel = extract(&trace, &Config::charm().with_parallel(true));
        prop_assert_eq!(serial.step, parallel.step);
        prop_assert_eq!(serial.local_step, parallel.local_step);
    }

    /// Sub-blocks always partition task time exactly.
    #[test]
    fn sub_blocks_partition_tasks(
        pes in 1u32..4,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let subs = sub_block_durations(&trace);
        prop_assert!(attributes_whole_task(&trace, &subs));
    }

    /// Idle experienced is bounded by the PE's recorded idle total and
    /// is zero on PEs that never idled.
    #[test]
    fn idle_experienced_is_bounded(
        pes in 1u32..4,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let idle = idle_experienced(&trace);
        let mut per_pe = vec![Dur::ZERO; trace.pe_count as usize];
        for i in &trace.idles {
            per_pe[i.pe.index()] += i.end - i.begin;
        }
        for t in &trace.tasks {
            prop_assert!(idle[t.id.index()] <= per_pe[t.pe.index()]);
        }
    }

    /// Critical path: its work is at least the longest single task, at
    /// most the total busy time, and never exceeds the makespan × PEs.
    #[test]
    fn critical_path_bounds(
        pes in 1u32..4,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let cp = lsr_metrics::CriticalPath::compute(&trace);
        if trace.tasks.is_empty() {
            prop_assert!(cp.tasks.is_empty());
        } else {
            let longest = trace.tasks.iter().map(|t| t.end - t.begin).max().unwrap();
            let busy: Dur = trace.tasks.iter().map(|t| t.end - t.begin).sum();
            prop_assert!(cp.work >= longest);
            prop_assert!(cp.work <= busy);
            prop_assert!(cp.makespan <= trace.span().1);
            let shares: f64 = cp.pe_shares(&trace).iter().sum();
            prop_assert!(cp.work == Dur::ZERO || (shares - 1.0).abs() < 1e-9);
            // The path is a real dependency chain: begin times are
            // non-decreasing along it.
            for w in cp.tasks.windows(2) {
                prop_assert!(trace.task(w[0]).begin <= trace.task(w[1]).begin);
            }
        }
    }

    /// Lateness is non-negative with a zero witness at every step.
    #[test]
    fn lateness_has_zero_witness_per_step(
        pes in 1u32..4,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..250),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let ls = extract(&trace, &Config::charm());
        let late = lsr_metrics::lateness(&trace, &ls);
        let mut min_per_step: std::collections::HashMap<u64, Dur> =
            std::collections::HashMap::new();
        for e in trace.event_ids() {
            let s = ls.global_step(e);
            let v = late[e.index()];
            min_per_step.entry(s).and_modify(|m| *m = (*m).min(v)).or_insert(v);
        }
        prop_assert!(min_per_step.values().all(|&m| m == Dur::ZERO));
    }

    /// Topology tie-breaking never violates the structural invariants.
    #[test]
    fn topology_tiebreak_preserves_invariants(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 0..200),
        ranks in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let ls = extract(&trace, &Config::charm().with_topology(ranks));
        prop_assert!(ls.verify(&trace).is_ok());
    }

    /// Time-windowed slices of valid traces are valid and extractable.
    #[test]
    fn windowed_traces_stay_valid(
        pes in 1u32..4,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..250),
        lo in 0u64..200,
        len in 0u64..300,
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let w = lsr_trace::window(&trace, lsr_trace::Time(lo), lsr_trace::Time(lo + len));
        prop_assert!(lsr_trace::validate(&w).is_ok());
        let ls = extract(&w, &Config::charm());
        prop_assert!(ls.verify(&w).is_ok());
        prop_assert!(w.tasks.len() <= trace.tasks.len());
    }

    /// The text log format round-trips arbitrary valid traces.
    #[test]
    fn logfmt_roundtrips(
        pes in 1u32..4,
        chares in 1u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..250),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let text = lsr_trace::logfmt::to_log_string(&trace);
        let back = lsr_trace::logfmt::from_log_str(&text).expect("parse");
        prop_assert_eq!(trace, back);
    }

    /// Global steps respect every matched message (already in verify,
    /// but stated directly here as the paper's core guarantee).
    #[test]
    fn messages_always_advance_steps(
        pes in 1u32..4,
        chares in 2u32..8,
        tape in proptest::collection::vec(any::<u8>(), 0..250),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        let ls = extract(&trace, &Config::charm());
        for m in &trace.msgs {
            if let Some(rt) = m.recv_task {
                let sink = trace.task(rt).sink.unwrap();
                prop_assert!(ls.global_step(sink) > ls.global_step(m.send_event));
            }
        }
    }

    /// Every extraction certifies against its own merge log: the
    /// certificate check accepts arbitrary tape-generated traces under
    /// every configuration (soundness of the audit, not just presets).
    #[test]
    fn extraction_always_certifies(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        for (name, cfg) in support::all_configs() {
            let (_, report) =
                lsr_audit::audit_extract(&trace, &cfg, lsr_audit::AuditOptions::default())
                    .expect("tape traces extract");
            prop_assert!(
                report.diagnostics.is_empty(),
                "{}: {:?}",
                name,
                report.diagnostics
            );
        }
    }

    /// Counterexample minimization is a pure function of its input:
    /// shrinking the same planted corruption twice yields byte-identical
    /// reproducers and identical probe counts.
    #[test]
    fn shrink_is_byte_deterministic(
        pes in 1u32..4,
        chares in 1u32..6,
        tape in proptest::collection::vec(any::<u8>(), 10..120),
    ) {
        let trace = support::trace_from_tape(pes, chares, &tape);
        // Invert the first nonempty TASK span so T005 fires; tapes that
        // never produced such a task are skipped.
        let mut planted = false;
        let log: String = lsr_trace::logfmt::to_log_string(&trace)
            .lines()
            .map(|l| {
                let mut f: Vec<&str> = l.split_whitespace().collect();
                if !planted && f.first() == Some(&"TASK") && f.len() >= 8 && f[5] != f[6] {
                    planted = true;
                    f.swap(5, 6);
                    f.join(" ") + "\n"
                } else {
                    l.to_owned() + "\n"
                }
            })
            .collect();
        if planted {
            let opts = lsr_audit::ShrinkOptions::default();
            let a = lsr_audit::shrink_log(&log, "T005", &opts).expect("T005 fires");
            let b = lsr_audit::shrink_log(&log, "T005", &opts).expect("T005 fires");
            prop_assert_eq!(&a.log, &b.log);
            prop_assert_eq!(a.probes, b.probes);
            prop_assert!(a.final_records <= a.original_records);
        }
    }
}

// ---------------------------------------------------------------------
// Differential race-classification tests (the R passes, end to end):
// swapping a racy pair's delivery order and re-running extraction must
// keep the event-level structure intact exactly when the race was
// classified benign.

/// Swaps every schedule-adjacent race of `trace` and checks the
/// classification against a fresh extraction of the swapped trace.
/// Returns how many swaps were exercised.
fn differential_swap_check(trace: &lsr_trace::Trace, cfg: &Config) -> usize {
    let report = lsr_lint::analyze_races(trace, cfg, 100_000).expect("acyclic");
    let base = extract(trace, cfg);
    let mut exercised = 0;
    for race in lsr_lint::swappable_races(trace, &report) {
        let Some(swapped) = lsr_lint::swap_adjacent_delivery(trace, race.first, race.second) else {
            continue;
        };
        let reextracted = extract(&swapped, cfg);
        let same = base.same_event_structure(&reextracted);
        assert_eq!(
            same,
            !race.class.is_structure_affecting(),
            "race {:?}/{:?} classified {:?}, but swapped structure {} the original",
            race.first,
            race.second,
            race.class,
            if same { "matches" } else { "differs from" },
        );
        exercised += 1;
    }
    exercised
}

/// Jacobi (over-decomposed Charm++ preset): many benign races, all of
/// which must leave the event-level structure untouched under swap.
#[test]
fn benign_races_are_structure_invariant_jacobi() {
    let trace = lsr_apps::jacobi2d(&lsr_apps::JacobiParams::fig8());
    let n = differential_swap_check(&trace, &Config::charm());
    assert!(n >= 20, "expected many swappable races, exercised {n}");
}

/// PDES (the paper's Fig. 24 preset): the noisiest app — racy tally
/// deliveries plus untraced detector calls. Every *race* (both
/// deliveries traced) must still be benign and structure-invariant;
/// the untraced pairs are reported separately as R004 and make no
/// reorderability claim.
#[test]
fn benign_races_are_structure_invariant_pdes() {
    let trace = lsr_apps::pdes_charm(&lsr_apps::PdesParams::fig24());
    let report = lsr_lint::analyze_races(&trace, &Config::charm(), 100_000).expect("acyclic");
    assert!(!report.untraced.is_empty(), "fig24 should surface untraced pairs");
    let n = differential_swap_check(&trace, &Config::charm());
    assert!(n >= 10, "expected many swappable races, exercised {n}");
}

/// The structure-affecting side of the iff: a plain receive racing
/// with a serial-numbered receive (the SDAG absorb window). Delivered
/// the other way, the plain task lands back-to-back before the serial
/// and is absorbed into it — a different merge decision, which is what
/// "structure-affecting" claims (the later pipeline stages may or may
/// not re-converge; here the shared sender makes the final phases
/// coincide, but the atom boundaries differ). The classifier must
/// flag the pair up front.
#[test]
fn structure_affecting_race_changes_merge_decisions_on_swap() {
    use lsr_trace::{Kind, PeId, Time, TraceBuilder};
    let mut b = TraceBuilder::new(2);
    let app = b.add_array("a", Kind::Application);
    let c0 = b.add_chare(app, 0, PeId(0));
    let c1 = b.add_chare(app, 1, PeId(1));
    let go = b.add_entry("go", None);
    let serial = b.add_entry("step", Some(1));
    let plain = b.add_entry("aux", None);
    let t0 = b.begin_task(c0, go, PeId(0), Time(0));
    let m0 = b.record_send(t0, Time(1), c1, serial);
    let m1 = b.record_send(t0, Time(2), c1, plain);
    b.end_task(t0, Time(3));
    let t1 = b.begin_task_from(c1, serial, PeId(1), Time(4), m0);
    b.end_task(t1, Time(6));
    let t2 = b.begin_task_from(c1, plain, PeId(1), Time(7), m1);
    b.end_task(t2, Time(9));
    let trace = b.build().unwrap();

    let cfg = Config::charm();
    let report = lsr_lint::analyze_races(&trace, &cfg, 16).expect("acyclic");
    assert_eq!(report.structure_affecting_count(), 1, "{report}");
    let race = report.races[0];
    assert!(race.class.is_structure_affecting());

    let swapped = lsr_lint::swap_adjacent_delivery(&trace, race.first, race.second)
        .expect("pair is schedule-adjacent");
    let (_, prov) = lsr_core::extract_with_provenance(&trace, &cfg);
    let (_, prov_swapped) = lsr_core::extract_with_provenance(&swapped, &cfg);
    // Observed order: serial first, plain second — no absorb window.
    assert_eq!(prov.rule_count(lsr_core::ProvenanceRule::SdagAbsorb), 0);
    // Swapped order: the plain receive runs back-to-back before the
    // serial and is absorbed — a merge decision the observed order
    // never took.
    assert_eq!(prov_swapped.rule_count(lsr_core::ProvenanceRule::SdagAbsorb), 1);
}
