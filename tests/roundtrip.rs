//! Serialization round trips on real application traces: the
//! Projections-style text log and serde JSON must both reproduce the
//! trace exactly, and the recovered structure must be identical.

mod support;

use lsr_apps::{jacobi2d, lulesh_mpi, JacobiParams, LuleshParams};
use lsr_core::{extract, Config};
use lsr_trace::logfmt;

#[test]
fn text_log_roundtrip_preserves_app_traces() {
    let traces = [
        jacobi2d(&JacobiParams::fig8()),
        lulesh_mpi(&LuleshParams::fig16_mpi()),
        support::trace_from_tape(2, 4, &[7, 1, 9, 200, 3, 44, 5, 6, 1, 0, 255, 13, 21, 34]),
    ];
    for tr in traces {
        let text = logfmt::to_log_string(&tr);
        let back = logfmt::from_log_str(&text).expect("parse back");
        assert_eq!(tr, back);
    }
}

#[test]
fn json_roundtrip_preserves_traces() {
    let tr = jacobi2d(&JacobiParams::fig15());
    let json = serde_json::to_string(&tr).expect("serialize");
    let back: lsr_trace::Trace = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(tr, back);
    assert!(lsr_trace::validate(&back).is_ok());
}

#[test]
fn structure_of_roundtripped_trace_is_identical() {
    let tr = jacobi2d(&JacobiParams::fig8());
    let back = logfmt::from_log_str(&logfmt::to_log_string(&tr)).unwrap();
    let a = extract(&tr, &Config::charm());
    let b = extract(&back, &Config::charm());
    assert_eq!(a.step, b.step);
    assert_eq!(a.phase_of_event, b.phase_of_event);
    assert_eq!(a.task_phase, b.task_phase);
}

#[test]
fn log_files_survive_disk_io() {
    let tr = jacobi2d(&JacobiParams::fig15());
    let dir = std::env::temp_dir().join("lsr_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("jacobi.lsrtrace");
    {
        let f = std::fs::File::create(&path).unwrap();
        logfmt::write_log(&tr, std::io::BufWriter::new(f)).unwrap();
    }
    let f = std::fs::File::open(&path).unwrap();
    let back = logfmt::read_log(std::io::BufReader::new(f)).unwrap();
    assert_eq!(tr, back);
    std::fs::remove_file(&path).ok();
}

#[test]
fn collective_flag_survives_roundtrip() {
    let tr = lulesh_mpi(&LuleshParams::fig16_mpi());
    let back = logfmt::from_log_str(&logfmt::to_log_string(&tr)).unwrap();
    let allred = back.entries.iter().find(|e| e.name == "MPI_Allreduce").unwrap();
    assert!(allred.collective);
    let send = back.entries.iter().find(|e| e.name == "MPI_Send").unwrap();
    assert!(!send.collective);
}
