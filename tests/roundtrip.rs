//! Serialization round trips on real application traces: the
//! Projections-style text log and serde JSON must both reproduce the
//! trace exactly, and the recovered structure must be identical.

mod support;

use lsr_apps::{jacobi2d, lulesh_mpi, JacobiParams, LuleshParams};
use lsr_core::{extract, Config};
use lsr_trace::logfmt;

#[test]
fn text_log_roundtrip_preserves_app_traces() {
    let traces = [
        jacobi2d(&JacobiParams::fig8()),
        lulesh_mpi(&LuleshParams::fig16_mpi()),
        support::trace_from_tape(2, 4, &[7, 1, 9, 200, 3, 44, 5, 6, 1, 0, 255, 13, 21, 34]),
    ];
    for tr in traces {
        let text = logfmt::to_log_string(&tr);
        let back = logfmt::from_log_str(&text).expect("parse back");
        assert_eq!(tr, back);
    }
}

#[test]
fn json_roundtrip_preserves_traces() {
    let tr = jacobi2d(&JacobiParams::fig15());
    let json = serde_json::to_string(&tr).expect("serialize");
    let back: lsr_trace::Trace = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(tr, back);
    assert!(lsr_trace::validate(&back).is_ok());
}

#[test]
fn structure_of_roundtripped_trace_is_identical() {
    let tr = jacobi2d(&JacobiParams::fig8());
    let back = logfmt::from_log_str(&logfmt::to_log_string(&tr)).unwrap();
    let a = extract(&tr, &Config::charm());
    let b = extract(&back, &Config::charm());
    assert_eq!(a.step, b.step);
    assert_eq!(a.phase_of_event, b.phase_of_event);
    assert_eq!(a.task_phase, b.task_phase);
}

#[test]
fn log_files_survive_disk_io() {
    let tr = jacobi2d(&JacobiParams::fig15());
    let dir = std::env::temp_dir().join("lsr_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("jacobi.lsrtrace");
    {
        let f = std::fs::File::create(&path).unwrap();
        logfmt::write_log(&tr, std::io::BufWriter::new(f)).unwrap();
    }
    let f = std::fs::File::open(&path).unwrap();
    let back = logfmt::read_log(std::io::BufReader::new(f)).unwrap();
    assert_eq!(tr, back);
    std::fs::remove_file(&path).ok();
}

/// Every `lsr gen` preset must survive both serializations — the
/// single-document log and the Projections-style split layout — and,
/// because the reader is order-independent, a document with its record
/// lines reversed must parse to the identical trace. Salvage mode on
/// clean input must be a no-op with an empty report.
#[test]
fn every_preset_roundtrips_single_and_split() {
    use lsr_apps::*;
    let presets: Vec<(&str, lsr_trace::Trace)> = vec![
        ("jacobi-fig8", jacobi2d(&JacobiParams::fig8())),
        ("jacobi-fig15", jacobi2d(&JacobiParams::fig15())),
        ("lulesh-charm", lulesh_charm(&LuleshParams::fig16_charm())),
        ("lulesh-mpi", lulesh_mpi(&LuleshParams::fig16_mpi())),
        ("lassen8", lassen_charm(&LassenParams::chares8())),
        ("lassen64", lassen_charm(&LassenParams::chares64())),
        ("lassen-mpi", lassen_mpi(&LassenParams::mpi(4, 2))),
        ("pdes", pdes_charm(&PdesParams::fig24())),
        ("mergetree", mergetree_mpi(&MergeTreeParams::small())),
        ("bt", bt_mpi(&BtParams::fig1())),
        ("divcon", divcon_charm(&DivConParams::small())),
    ];
    let dir = std::env::temp_dir().join(format!("lsr_preset_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, tr) in &presets {
        // Single document.
        let text = logfmt::to_log_string(tr);
        let back = logfmt::from_log_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(*tr, back, "{name}: single-document roundtrip");

        // The same document with every record line in reverse order:
        // ingestion is two-phase, so record order must not matter.
        let mut lines: Vec<&str> = text.lines().collect();
        let header = lines.remove(0);
        lines.reverse();
        let reversed = std::iter::once(header).chain(lines).collect::<Vec<_>>().join("\n") + "\n";
        let back =
            logfmt::from_log_str(&reversed).unwrap_or_else(|e| panic!("{name} (reversed): {e}"));
        assert_eq!(*tr, back, "{name}: reversed-order roundtrip");

        // Salvage on clean input: identical trace, empty report.
        let (back, rep) = logfmt::read_log_salvage(text.as_bytes())
            .unwrap_or_else(|e| panic!("{name} (salvage): {e}"));
        assert_eq!(*tr, back, "{name}: salvage roundtrip");
        assert!(rep.is_clean(), "{name}: clean input produced findings: {}", rep.summary());

        // Split layout (.sts + per-PE logs).
        lsr_trace::multifile::write_split(tr, &dir, name)
            .unwrap_or_else(|e| panic!("{name}: write_split: {e}"));
        let back = lsr_trace::multifile::read_split(&dir, name)
            .unwrap_or_else(|e| panic!("{name}: read_split: {e}"));
        assert_eq!(*tr, back, "{name}: split roundtrip");
        let (back, rep) = lsr_trace::multifile::read_split_salvage(&dir, name)
            .unwrap_or_else(|e| panic!("{name}: read_split_salvage: {e}"));
        assert_eq!(*tr, back, "{name}: split salvage roundtrip");
        assert!(rep.is_clean(), "{name}: split salvage found: {}", rep.summary());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn collective_flag_survives_roundtrip() {
    let tr = lulesh_mpi(&LuleshParams::fig16_mpi());
    let back = logfmt::from_log_str(&logfmt::to_log_string(&tr)).unwrap();
    let allred = back.entries.iter().find(|e| e.name == "MPI_Allreduce").unwrap();
    assert!(allred.collective);
    let send = back.entries.iter().find(|e| e.name == "MPI_Send").unwrap();
    assert!(!send.collective);
}
