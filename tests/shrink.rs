//! Counterexample-minimization tests for `lsr-audit`'s ddmin shrinker:
//! planted mutations must reduce by at least 80% of record lines with
//! the diagnostic still firing on the reproducer, minimization must be
//! byte-deterministic, and a code that never fires must be rejected.

use lsr_audit::{shrink_log, ShrinkError, ShrinkOptions};
use lsr_core::Config;
use lsr_lint::{ingest_diagnostics, lint_trace, LintOptions};
use lsr_trace::logfmt::{read_log_salvage, to_log_string};

fn jacobi_log() -> String {
    to_log_string(&lsr_apps::jacobi2d(&lsr_apps::JacobiParams::fig8()))
}

/// Applies `f` to the first line it accepts; panics if none matched.
fn plant(log: &str, f: impl Fn(&str) -> Option<String>) -> String {
    let mut done = false;
    let out: Vec<String> = log
        .lines()
        .map(|l| {
            if !done {
                if let Some(r) = f(l) {
                    done = true;
                    return r;
                }
            }
            l.to_owned()
        })
        .collect();
    assert!(done, "no line matched the planted mutation");
    out.join("\n") + "\n"
}

/// Swaps whitespace-separated fields `i` and `j` of a `kw` record line.
fn swap_fields(l: &str, kw: &str, i: usize, j: usize) -> Option<String> {
    let mut f: Vec<&str> = l.split_whitespace().collect();
    if f.first() == Some(&kw) && f.len() > j && f[i] != f[j] {
        f.swap(i, j);
        Some(f.join(" "))
    } else {
        None
    }
}

/// Independent re-check that `code` fires on a reproducer (same oracle
/// family split the shrinker uses, re-derived here so the test does not
/// trust the shrinker's own probe).
fn still_fires(log: &str, code: &str) -> bool {
    let Ok((tr, report)) = read_log_salvage(log.as_bytes()) else {
        return false;
    };
    if code.starts_with('I') {
        return ingest_diagnostics(&report).iter().any(|d| d.code == code);
    }
    let opts = LintOptions {
        limit: 256,
        check_structure: false,
        config: Config::charm().with_verify(false),
    };
    lint_trace(&tr, &opts).diagnostics.iter().any(|d| d.code == code)
}

fn shrink_and_check(log: &str, code: &str) -> lsr_audit::ShrinkResult {
    let r = shrink_log(log, code, &ShrinkOptions::default())
        .unwrap_or_else(|e| panic!("{code} must shrink: {e}"));
    assert!(
        r.reduction() >= 0.8,
        "{code}: expected >= 80% reduction, got {:.1}% ({} -> {} records)",
        r.reduction() * 100.0,
        r.original_records,
        r.final_records
    );
    assert!(still_fires(&r.log, code), "{code} must still fire on the reproducer:\n{}", r.log);
    r
}

#[test]
fn shrinks_inverted_task_span_to_t005() {
    // Lines read "TASK <id> <chare> <entry> <pe> <begin> <end> <sink>".
    let log = plant(&jacobi_log(), |l| swap_fields(l, "TASK", 5, 6));
    shrink_and_check(&log, "T005");
}

#[test]
fn shrinks_inverted_idle_span_to_t011() {
    // Lines read "IDLE <pe> <begin> <end>".
    let log = plant(&jacobi_log(), |l| swap_fields(l, "IDLE", 2, 3));
    shrink_and_check(&log, "T011");
}

#[test]
fn shrinks_garbage_line_to_i001() {
    let log = format!("{}GARBAGE not a record\n", jacobi_log());
    let r = shrink_and_check(&log, "I001");
    // The 1-minimal reproducer for a parse error is the garbage line
    // itself (metadata is only kept if removing it breaks the repro).
    assert!(r.log.contains("GARBAGE"), "reproducer must keep the offending line:\n{}", r.log);
}

#[test]
fn shrinking_is_byte_deterministic() {
    let log = plant(&jacobi_log(), |l| swap_fields(l, "TASK", 5, 6));
    let a = shrink_log(&log, "T005", &ShrinkOptions::default()).expect("shrinks");
    let b = shrink_log(&log, "T005", &ShrinkOptions::default()).expect("shrinks");
    assert_eq!(a.log, b.log, "reproducer must be byte-identical across runs");
    assert_eq!(a.probes, b.probes, "probe sequence must be identical");
    assert_eq!(a.final_records, b.final_records);
}

#[test]
fn reproducer_is_strictly_parseable() {
    // The canonicalization pass renumbers ids, so the reproducer loads
    // without salvage warnings whenever the code survives rewriting.
    let log = plant(&jacobi_log(), |l| swap_fields(l, "TASK", 5, 6));
    let r = shrink_log(&log, "T005", &ShrinkOptions::default()).expect("shrinks");
    let (_, report) = read_log_salvage(r.log.as_bytes()).expect("parses");
    assert!(
        report.diagnostics.is_empty(),
        "canonical reproducer must load clean, got {:?}",
        report.diagnostics
    );
}

#[test]
fn code_that_never_fires_is_rejected() {
    let err = shrink_log(&jacobi_log(), "T005", &ShrinkOptions::default())
        .expect_err("clean trace has no T005");
    assert_eq!(err, ShrinkError::CodeNeverFires { code: "T005".into() });
}

#[test]
fn probe_budget_still_returns_a_firing_candidate() {
    let log = plant(&jacobi_log(), |l| swap_fields(l, "TASK", 5, 6));
    let opts = ShrinkOptions { max_probes: 5, ..ShrinkOptions::default() };
    let r = shrink_log(&log, "T005", &opts).expect("initial probe fits the budget");
    assert!(r.probes <= 6, "budget (plus the canonicalization probe) must be respected");
    assert!(still_fires(&r.log, "T005"), "budget-limited result must still fire");
}
