//! Shared helpers for the integration and property tests: a
//! deterministic, tape-driven random workload generator producing valid
//! traces with adversarial shapes (unmatched messages, broadcasts,
//! runtime chares, idle gaps).

use lsr_trace::{ChareId, EntryId, Kind, MsgId, PeId, Time, Trace, TraceBuilder};

/// Builds a trace from a byte tape. Every byte drives one decision, so
/// proptest shrinking simplifies the workload monotonically. The
/// generator maintains per-PE cursors and a pool of undelivered
/// messages; invalid decisions degrade to no-ops.
pub fn trace_from_tape(pes: u32, chares: u32, tape: &[u8]) -> Trace {
    assert!(pes > 0 && chares > 0);
    let mut b = TraceBuilder::new(pes);
    let app = b.add_array("app", Kind::Application);
    let rt = b.add_array("rt", Kind::Runtime);
    let app_chares: Vec<ChareId> =
        (0..chares).map(|i| b.add_chare(app, i, PeId(i % pes))).collect();
    let rt_chares: Vec<ChareId> = (0..pes).map(|i| b.add_chare(rt, i, PeId(i))).collect();
    let entries: Vec<EntryId> = (0..4)
        .map(|i| b.add_entry(&format!("e{i}"), if i >= 2 { Some(i) } else { None }))
        .collect();

    let pe_of = |c: ChareId, trace_chares: &[ChareId], rt_list: &[ChareId]| -> PeId {
        if let Some(pos) = trace_chares.iter().position(|&x| x == c) {
            PeId(pos as u32 % pes)
        } else {
            let pos = rt_list.iter().position(|&x| x == c).expect("chare exists");
            PeId(pos as u32)
        }
    };

    let mut pe_free: Vec<u64> = vec![0; pes as usize];
    // (msg, dst chare, dst entry, send time)
    let mut pending: Vec<(MsgId, ChareId, EntryId, u64)> = Vec::new();
    let mut it = tape.iter().copied();
    let mut next = || it.next().unwrap_or(0);

    let mut steps = 0usize;
    while steps < tape.len() {
        steps += 1;
        let d = next();
        let pick_chare = |v: u8| -> ChareId {
            let all = chares + pes;
            let k = v as u32 % all;
            if k < chares {
                app_chares[k as usize]
            } else {
                rt_chares[(k - chares) as usize]
            }
        };
        match d % 3 {
            // Spontaneous task with a few sends.
            0 => {
                let chare = pick_chare(next());
                let pe = pe_of(chare, &app_chares, &rt_chares);
                let begin = pe_free[pe.index()];
                let dur = 2 + (next() % 16) as u64;
                let t = b.begin_task(
                    chare,
                    entries[(d >> 2) as usize % entries.len()],
                    pe,
                    Time(begin),
                );
                let nsends = next() % 3;
                let mut at = begin;
                for _ in 0..nsends {
                    at += 1 + (next() % 4) as u64;
                    let dst = pick_chare(next());
                    let entry = entries[next() as usize % entries.len()];
                    let m = b.record_send(t, Time(at.min(begin + dur)), dst, entry);
                    pending.push((m, dst, entry, at));
                }
                b.end_task(t, Time(begin + dur));
                pe_free[pe.index()] = begin + dur;
            }
            // Deliver a pending message as a new task.
            1 => {
                if pending.is_empty() {
                    continue;
                }
                let idx = next() as usize % pending.len();
                let (m, dst, entry, sent) = pending.swap_remove(idx);
                let pe = pe_of(dst, &app_chares, &rt_chares);
                let begin = pe_free[pe.index()].max(sent + 1 + (next() % 8) as u64);
                if begin > pe_free[pe.index()] {
                    b.add_idle(pe, Time(pe_free[pe.index()]), Time(begin));
                }
                let dur = 2 + (next() % 16) as u64;
                let t = b.begin_task_from(dst, entry, pe, Time(begin), m);
                let nsends = next() % 2;
                let mut at = begin;
                for _ in 0..nsends {
                    at += 1;
                    let dst2 = pick_chare(next());
                    let e2 = entries[next() as usize % entries.len()];
                    let m2 = b.record_send(t, Time(at.min(begin + dur)), dst2, e2);
                    pending.push((m2, dst2, e2, at));
                }
                b.end_task(t, Time(begin + dur));
                pe_free[pe.index()] = begin + dur;
            }
            // Broadcast from a spontaneous task.
            _ => {
                let chare = pick_chare(next());
                let pe = pe_of(chare, &app_chares, &rt_chares);
                let begin = pe_free[pe.index()];
                let dur = 3 + (next() % 8) as u64;
                let entry = entries[next() as usize % entries.len()];
                let t = b.begin_task(chare, entry, pe, Time(begin));
                let k = 2 + (next() % 3) as u32;
                let dsts: Vec<(ChareId, EntryId)> =
                    (0..k).map(|i| (pick_chare(next().wrapping_add(i as u8)), entry)).collect();
                let msgs = b.record_broadcast(t, Time(begin + 1), &dsts);
                for (m, (dc, de)) in msgs.into_iter().zip(dsts) {
                    pending.push((m, dc, de, begin + 1));
                }
                b.end_task(t, Time(begin + dur));
                pe_free[pe.index()] = begin + dur;
            }
        }
    }
    // Leave remaining messages unmatched: lost dependencies are legal.
    b.build().expect("tape generator must produce valid traces")
}

/// All extraction configurations exercised by the cross-cutting tests.
#[allow(dead_code)] // not every test binary uses every helper
pub fn all_configs() -> Vec<(&'static str, lsr_core::Config)> {
    use lsr_core::{Config, OrderingPolicy};
    vec![
        ("charm", Config::charm()),
        ("charm/physical", Config::charm().with_ordering(OrderingPolicy::PhysicalTime)),
        ("charm/no-infer", Config::charm().with_inference(false)),
        ("charm/no-split", Config::charm().with_split(false)),
        ("charm/no-sdag", Config::charm().with_sdag(false)),
        ("charm/parallel", Config::charm().with_parallel(true)),
        ("mpi", Config::mpi()),
        ("mpi/baseline", Config::mpi_baseline()),
        ("mpi/no-order", Config::mpi().with_process_order(false)),
    ]
}
