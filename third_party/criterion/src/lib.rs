//! Offline shim for the subset of `criterion` this workspace uses:
//! benchmark groups with `bench_function` / `bench_with_input`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box`.
//!
//! Instead of criterion's statistical machinery, each benchmark runs a
//! short warmup plus `sample_size` timed iterations and prints the
//! mean/min wall time — enough to compare configurations by eye and to
//! keep `cargo bench` working without registry access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), sample_size: 10 }
    }
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id from a function name plus parameter.
    pub fn new(function: &str, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: format!("{function}/{parameter}") }
    }

    /// An id from just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { text: parameter.to_string() }
    }
}

/// Conversion for the various id types accepted by bench entry points.
pub trait IntoBenchmarkId {
    /// The id's display text.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&self.name, &id.into_text());
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&self.name, &id.into_text());
        self
    }

    /// Ends the group (output is already printed per benchmark).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` runs of `routine` (after one warmup run).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{group}/{id}: mean {:.3?} min {:.3?} ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, n| {
            b.iter(|| *n * 2);
        });
        group.finish();
        // One warmup + three samples.
        assert_eq!(runs, 4);
    }
}
