//! Offline shim for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with handle-less `spawn`. Implemented on
//! top of `std::thread::scope` (the std feature that obsoleted
//! crossbeam's scoped threads).

/// Scoped threads.
pub mod thread {
    /// Handle to a running scope; passed to the closure and to every
    /// spawned thread (mirroring crossbeam's API, where children can
    /// spawn siblings).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns when every spawned thread has finished.
    ///
    /// Unlike real crossbeam — which collects child panics into `Err` —
    /// the std implementation resumes the panic on join, so the `Err`
    /// branch is never taken; callers' `.expect(...)` still behaves
    /// sensibly (the panic propagates with its original message).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_share_borrows() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let sum: usize = chunk.iter().sum();
                    counter.fetch_add(sum, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn children_can_spawn_siblings() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                counter.fetch_add(1, Ordering::Relaxed);
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }
}
