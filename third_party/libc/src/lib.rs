//! Offline shim for the handful of `libc` items this workspace uses
//! (resetting the `SIGPIPE` disposition in the CLI). Declarations match
//! the Linux C ABI.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;

/// Signal-handler pointer, as `uintptr_t` (matches libc's usage where
/// `SIG_DFL`/`SIG_IGN` are small integer constants).
pub type sighandler_t = usize;

/// Default signal disposition.
pub const SIG_DFL: sighandler_t = 0;

/// Ignore-signal disposition.
pub const SIG_IGN: sighandler_t = 1;

/// Broken-pipe signal number (Linux).
pub const SIGPIPE: c_int = 13;

extern "C" {
    /// POSIX `signal(2)`.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
}

#[cfg(test)]
mod tests {
    #[test]
    fn signal_installs_and_returns_previous_disposition() {
        unsafe {
            let prev = super::signal(super::SIGPIPE, super::SIG_IGN);
            let back = super::signal(super::SIGPIPE, prev);
            assert_eq!(back, super::SIG_IGN);
        }
    }
}
