//! Offline shim for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with parking_lot's poison-free API, implemented
//! over `std::sync`. A poisoned std lock means a thread panicked while
//! holding it; matching parking_lot, the shim ignores the poison flag
//! and returns the guard (the panic is already propagating elsewhere).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
