//! Offline shim for the subset of `proptest` this workspace uses: the
//! `proptest!` macro with `#![proptest_config]`, integer-range / `any` /
//! `Just` / tuple / `prop_oneof!` / `collection::vec` / string
//! strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Compared to the real crate there is no shrinking: each test runs a
//! fixed number of deterministic cases derived from the test's name,
//! and a failing case panics with the generated inputs' debug
//! representation via the normal assert machinery. Persisted `cc <hex>`
//! seeds in the test file's `.proptest-regressions` sibling are folded
//! into extra RNG seeds and replayed before the novel cases, so a
//! committed regression corpus keeps exercising every property. That
//! keeps the property suites meaningful (deterministic, reproducible,
//! varied inputs) in a container with no registry access.

/// Test-runner configuration (`ProptestConfig` in the prelude).
pub mod test_runner {
    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// How many generated inputs each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    pub use rand::rngs::SmallRng as TestRng;
}

/// Strategy trait and combinators.
pub mod strategy {
    use rand::{Rng, SeedableRng};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value;

        /// Randomly permutes the generated `Vec` (mirrors proptest's
        /// `Strategy::prop_shuffle`).
        fn prop_shuffle<T>(self) -> Shuffle<Self>
        where
            Self: Strategy<Value = Vec<T>> + Sized,
        {
            Shuffle(self)
        }
    }

    /// Uniformly random permutation of an inner `Vec` strategy
    /// (see [`Strategy::prop_shuffle`]).
    #[derive(Debug, Clone)]
    pub struct Shuffle<S>(S);

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Vec<T> {
            let mut v = self.0.generate(rng);
            // Fisher–Yates.
            for i in (1..v.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                v.swap(i, j);
            }
            v
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut crate::test_runner::TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` marker (stands in for proptest's `Arbitrary`).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Produces an arbitrary value of `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// String strategies are written as regex literals in proptest; the
    /// shim ignores the pattern and produces printable text of varied
    /// length (every workspace use is the any-printable class `\PC*`).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> String {
            let len = rng.gen_range(0usize..64);
            (0..len)
                .map(|_| {
                    // Mostly ASCII printable, occasionally multi-byte.
                    if rng.gen_range(0u32..8) == 0 {
                        const EXOTIC: [char; 6] = ['é', 'λ', '中', '🌀', '\u{2028}', 'ß'];
                        EXOTIC[rng.gen_range(0usize..EXOTIC.len())]
                    } else {
                        char::from(rng.gen_range(0x20u8..0x7F))
                    }
                })
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// Seeds a deterministic per-test RNG (used by `proptest!`).
    pub fn case_rng(test_name: &str, case: u64) -> crate::test_runner::TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        crate::test_runner::TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Vec<S::Value> {
            let n =
                if self.len.is_empty() { self.len.start } else { rng.gen_range(self.len.clone()) };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure, like a
/// plain `assert!` — the shim has no shrinking phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Folds the `cc <hex>` seed lines of `source_file`'s sibling
/// `.proptest-regressions` file into RNG seeds. `source_file` is the
/// test's `file!()`, resolved against the crate root when relative (the
/// working directory of `cargo test`). A missing file means no seeds.
pub fn persisted_seeds(source_file: &str) -> Vec<u64> {
    let path = std::path::Path::new(source_file).with_extension("proptest-regressions");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("cc "))
        .map(|rest| {
            let hex = rest.split_whitespace().next().unwrap_or("");
            let mut h: u64 = 0xcbf29ce484222325;
            for b in hex.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        })
        .collect()
}

/// Defines property tests: each `fn` first replays any persisted
/// regression seeds, then runs `cases` novel deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __run = |__seed: u64| {
                let mut __rng = $crate::strategy::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __seed,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            };
            // Committed regression cases replay before novel ones.
            for __seed in $crate::persisted_seeds(file!()) {
                __run(__seed);
            }
            for __case in 0..__config.cases {
                __run(__case as u64);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_work(
            n in 1u32..5,
            bytes in crate::collection::vec(any::<u8>(), 0..10),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(bytes.len() < 10);
            let _: bool = flag;
        }

        #[test]
        fn oneof_and_just_work(tag in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(tag == "a" || tag == "b");
        }

        #[test]
        fn string_strategy_works(s in "\\PC*") {
            prop_assert!(s.chars().count() < 64 + 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::strategy::Strategy::generate(
            &(0u64..1000),
            &mut crate::strategy::case_rng("x", 3),
        );
        let b = crate::strategy::Strategy::generate(
            &(0u64..1000),
            &mut crate::strategy::case_rng("x", 3),
        );
        assert_eq!(a, b);
    }
}
