//! Offline shim for the subset of `rand` this workspace uses: seeded
//! deterministic generators (`SmallRng`/`StdRng`), `Rng::gen`,
//! `gen_range`, and `gen_bool`. The registry is unreachable in the
//! build container, so the real crate cannot be fetched.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — different
//! streams from the real crate, but every consumer in this workspace
//! only relies on *determinism per seed*, never on specific values.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly by [`Rng::gen`] (stands in for rand's
/// `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleRange: Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                ((lo as i64).wrapping_add((rng.next_u64() % span) as i64)) as $t
            }
        }
    )*};
}

sample_range_int!(i8, i16, i32, i64, isize);

/// Convenience methods over any bit source (the user-facing trait).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ state, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// In the shim, the "cryptographic" generator shares the small one's
    /// implementation — consumers only require per-seed determinism.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va, (0..8).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn unit_float_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(2usize..9);
            assert!((2..9).contains(&x));
            let y = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(3);
        let _ = r.gen_range(4usize..4);
    }
}
