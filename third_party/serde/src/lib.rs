//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build container has no access to a crate registry, so the real
//! serde cannot be fetched. This crate provides API-compatible (for our
//! call sites) `Serialize`/`Deserialize` traits plus the matching derive
//! macros (re-exported from the sibling `serde_derive` shim). Instead of
//! serde's visitor architecture, values round-trip through a simple
//! self-describing [`Value`] tree that `serde_json` (also shimmed)
//! renders to and parses from JSON text. The JSON produced matches real
//! serde's externally-tagged conventions for the shapes we derive
//! (structs, tuple newtypes with `#[serde(transparent)]`, unit and
//! struct enum variants, `Option`, sequences).

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (the shim's "data model").
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// An ordered map with string keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.kind_name()))
    }
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim data model.
    fn ser(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the shim data model.
    fn deser(v: &Value) -> Result<Self, DeError>;
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deser(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    _ => Err(DeError::expected("unsigned integer", v)),
                }
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn deser(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *v {
                    Value::U64(n) => n as i128,
                    Value::I64(n) => n as i128,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    /// Identity: lets callers parse arbitrary JSON into the data model
    /// (`serde_json::from_str::<Value>`) and inspect it with
    /// [`Value::get`], e.g. to validate a document against a schema.
    fn deser(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for f64 {
    fn ser(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(x) => x.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deser(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deser(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::deser).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deser(&42u64.ser()), Ok(42));
        assert_eq!(i32::deser(&(-7i32).ser()), Ok(-7));
        assert_eq!(bool::deser(&true.ser()), Ok(true));
        assert_eq!(String::deser(&"hi".to_string().ser()), Ok("hi".to_string()));
        assert_eq!(Option::<u32>::deser(&Value::Null), Ok(None));
        assert_eq!(Vec::<u8>::deser(&vec![1u8, 2].ser()), Ok(vec![1, 2]));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        assert!(u32::deser(&Value::Str("x".into())).is_err());
        assert!(bool::deser(&Value::U64(1)).is_err());
        assert!(u8::deser(&Value::U64(300)).is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Value::Obj(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
