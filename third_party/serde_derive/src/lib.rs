//! Derive macros for the offline `serde` shim.
//!
//! The build container has no registry access, so `syn`/`quote` are
//! unavailable; the input token stream is parsed by hand. Supported
//! shapes — which cover every derive site in this workspace:
//!
//! * structs with named fields (honoring `#[serde(default)]` on fields);
//! * tuple structs with one field (including `#[serde(transparent)]`);
//! * enums whose variants are unit or struct-like.
//!
//! Generics are not supported. The generated code targets the shim's
//! `ser`/`deser` traits, not real serde's visitor API.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives the shim `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    has_default: bool,
}

enum Variant {
    Unit(String),
    Struct(String, Vec<Field>),
}

enum Shape {
    Named(Vec<Field>),
    Tuple1,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Collects leading `#[...]` attributes, returning their stringified
/// contents; leaves `iter` positioned at the first non-attribute token.
fn take_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> Vec<String> {
    let mut attrs = Vec::new();
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                attrs.push(g.stream().to_string());
            }
            other => panic!("malformed attribute after `#`: {other:?}"),
        }
    }
    attrs
}

fn attr_has(attrs: &[String], marker: &str) -> bool {
    attrs.iter().any(|a| {
        let squashed: String = a.chars().filter(|c| !c.is_whitespace()).collect();
        squashed.starts_with("serde(") && squashed.contains(marker)
    })
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let attrs = take_attrs(&mut iter);
    let transparent = attr_has(&attrs, "transparent");

    // Skip visibility (`pub`, optionally followed by `(crate)` etc.).
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }

    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let shape = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                if transparent {
                    panic!("`#[serde(transparent)]` on named struct `{name}` is unsupported");
                }
                Shape::Named(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = count_tuple_fields(g.stream());
                if fields != 1 {
                    panic!("tuple struct `{name}` must have exactly 1 field, has {fields}");
                }
                Shape::Tuple1
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        kw => panic!("serde shim derive supports struct/enum only, found `{kw}`"),
    };
    Item { name, shape }
}

/// Parses `name: Type` fields (with attributes and visibility) from the
/// body of a braced struct or struct-like enum variant.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        if iter.peek().is_none() {
            break;
        }
        let attrs = take_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, has_default: attr_has(&attrs, "default") });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tok in body {
        saw_token = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => {}
        }
    }
    // Commas separate fields; a trailing comma would overcount by one,
    // but none of our derive sites use one inside tuple structs.
    if saw_token {
        fields + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        if iter.peek().is_none() {
            break;
        }
        let _attrs = take_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                iter.next();
                variants.push(Variant::Struct(name, fields));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("tuple enum variant `{name}` is unsupported by the serde shim");
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Consume the separating comma, if any.
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Tuple1 => "::serde::Serialize::ser(&self.0)".to_string(),
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("({:?}.to_string(), ::serde::Serialize::ser(&self.{}))", f.name, f.name)
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => {
                        format!("{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),")
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::ser({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                             ::serde::Value::Obj(vec![{}]))]),",
                            binds.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn ser(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

/// Emits the field-construction expression list for a named-field shape
/// reading from the object value expression `src`.
fn named_ctor(type_name: &str, fields: &[Field], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let missing = if f.has_default {
                "::core::default::Default::default()".to_string()
            } else {
                format!(
                    "return Err(::serde::DeError(\"missing field `{}` in `{}`\".to_string()))",
                    f.name, type_name
                )
            };
            format!(
                "{}: match {src}.get({:?}) {{ \
                     Some(x) => ::serde::Deserialize::deser(x)?, \
                     None => {missing}, \
                 }}",
                f.name, f.name
            )
        })
        .collect();
    inits.join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Tuple1 => format!("Ok({name}(::serde::Deserialize::deser(v)?))"),
        Shape::Named(fields) => {
            let inits = named_ctor(name, fields, "v");
            format!(
                "match v {{\
                     ::serde::Value::Obj(_) => Ok({name} {{ {inits} }}),\
                     other => Err(::serde::DeError::expected(\"object\", other)),\
                 }}"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),"));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits = named_ctor(&format!("{name}::{vn}"), fields, "inner");
                        struct_arms.push_str(&format!("{vn:?} => Ok({name}::{vn} {{ {inits} }}),"));
                    }
                }
            }
            format!(
                "match v {{\
                     ::serde::Value::Str(s) => match s.as_str() {{\
                         {unit_arms}\
                         other => Err(::serde::DeError(format!(\
                             \"unknown variant `{{other}}` of `{name}`\"))),\
                     }},\
                     ::serde::Value::Obj(entries) if entries.len() == 1 => {{\
                         let (key, inner) = &entries[0];\
                         match key.as_str() {{\
                             {struct_arms}\
                             other => Err(::serde::DeError(format!(\
                                 \"unknown variant `{{other}}` of `{name}`\"))),\
                         }}\
                     }},\
                     other => Err(::serde::DeError::expected(\"variant of {name}\", other)),\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn deser(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\
         }}"
    )
}
