//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], operating
//! through the shim `serde::Value` data model.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error { msg: e.0 }
    }
}

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.ser(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as indented JSON (two spaces per level).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.ser(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::deser(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x}"));
            } else {
                // Real serde_json refuses non-finite floats; emitting null
                // keeps the output parseable.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(&items[i], out, indent, level + 1);
        }),
        Value::Obj(entries) => write_seq(out, indent, level, entries.len(), '{', '}', |out, i| {
            let (k, item) = &entries[i];
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(item, out, indent, level + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: format!("{msg} at byte {}", self.pos) }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat("]") {
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat("]") {
                        return Ok(Value::Arr(items));
                    }
                    return Err(self.err("expected `,` or `]`"));
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.eat("}") {
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(":") {
                        return Err(self.err("expected `:` after object key"));
                    }
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat("}") {
                        return Ok(Value::Obj(entries));
                    }
                    return Err(self.err("expected `,` or `}`"));
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        if !self.eat("\"") {
            return Err(self.err("expected string"));
        }
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid; find the char boundary and copy it.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("truncated \\u escape"));
            };
            self.pos += 1;
            let digit = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let _ = self.eat("-");
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if matches!(self.bytes.get(self.pos), Some(b'.')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected a JSON value"));
        }
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\u{1F600}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn vectors_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        assert_eq!(from_str::<Vec<u32>>("[]").unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<bool>("tru").is_err());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = vec![vec![1u8], vec![], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }
}
